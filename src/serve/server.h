// The resident query server behind `itm served` (DESIGN.md decision #13).
//
// A long-lived process holds the current map as an immutable *Epoch* —
// snapshot storage (an mmap of the `.itms` file, or the in-memory bytes a
// delta apply produced), the validated SnapshotView over it, one shared
// QueryEngine, per-worker-slot LRU caches and a per-epoch latency record.
// Sessions speak the PR 4 line-delimited batch protocol, answered by
// sharded workers over net::Executor, plus control verbs:
//
//   swap-snapshot <path>   load a full `.itms` and hot-swap to it
//   apply-delta <path>     apply an `.itmsd` to the live epoch and swap
//   epoch                  current epoch id/checksum/latency quantiles
//   quit                   end the session
//
// Hot swap is RCU-style: EpochManager keeps an atomic current-epoch
// pointer and a fixed array of per-worker hazard slots. A reader pins the
// epoch into its slot, re-checks the current pointer (retrying if a swap
// raced), answers, and clears the slot; the writer exchanges the pointer
// and then waits for every slot to let go of the old epoch before deleting
// it. Queries take no locks — a swap costs the writer a grace wait, never
// a reader a stall — and an answer is always computed against exactly one
// epoch, never a blend (asserted under TSan by tests/serve/hot_swap_test).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "net/executor.h"
#include "obs/quantile.h"
#include "serve/lru_cache.h"
#include "serve/mmap.h"
#include "serve/query_engine.h"

namespace itm::serve {

// One immutable serving generation: storage + view + engine + caches.
// Construction validates; after that every member is read-only except the
// per-slot caches and the latency record, which are written only through
// answer() under the slot-exclusivity rule below.
class Epoch {
 public:
  // One cache slot per executor shard (shard_count_for caps at 64).
  static constexpr std::size_t kSlots = 64;

  // Builds an epoch by mapping a full `.itms` file (zero-copy).
  [[nodiscard]] static std::unique_ptr<Epoch> from_file(
      std::uint64_t id, const std::string& path, std::size_t cache_capacity,
      std::string* error);
  // Builds an epoch over in-memory snapshot bytes (the delta-apply path);
  // takes ownership of `bytes` and borrow-views them, so delta epochs and
  // mmap epochs serve through the identical code path.
  [[nodiscard]] static std::unique_ptr<Epoch> from_bytes(
      std::uint64_t id, std::string bytes, std::size_t cache_capacity,
      std::string* error);

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }
  // The full snapshot bytes (header included) — the base a delta applies to.
  [[nodiscard]] std::string_view bytes() const;
  [[nodiscard]] const QueryEngine& engine() const { return *engine_; }

  // Answers one protocol line through slot `slot`'s cache. Thread-safe as
  // long as no two threads use the same slot concurrently — the executor's
  // shard index provides exactly that guarantee.
  [[nodiscard]] std::string answer(std::size_t slot,
                                   const std::string& line) const;

  [[nodiscard]] std::uint64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  // Per-epoch answer latency (cache hits included).
  [[nodiscard]] const obs::QuantileHistogram& latency() const {
    return latency_;
  }

 private:
  Epoch(std::uint64_t id, std::size_t cache_capacity);

  std::uint64_t id_ = 0;
  std::uint64_t checksum_ = 0;
  std::optional<MmapSnapshot> mapped_;  // from_file storage
  std::string blob_;                    // from_bytes storage
  std::unique_ptr<QueryEngine> engine_;
  mutable std::vector<LruCache<std::string>> caches_;  // one per slot
  mutable obs::QuantileHistogram latency_;
  mutable std::atomic<std::uint64_t> queries_{0};
};

// The atomic epoch pointer plus per-reader hazard slots. One writer at a
// time (the session loop); up to kSlots concurrent readers.
class EpochManager {
 public:
  static constexpr std::size_t kSlots = Epoch::kSlots;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;
  ~EpochManager();

  // Publishes `next` as the current epoch and waits for every reader slot
  // to release the previous one. Returns the retired epoch (fully
  // quiesced — safe to inspect and destroy); null on the first install.
  [[nodiscard]] std::unique_ptr<const Epoch> install(
      std::unique_ptr<const Epoch> next);

  // Pins the current epoch into `slot` and returns it. The epoch stays
  // valid until unpin(slot); a concurrent install() waits for the slot.
  [[nodiscard]] const Epoch* pin(std::size_t slot);
  void unpin(std::size_t slot);

  // The current epoch without pinning — only safe on the writer thread or
  // when no install can run concurrently.
  [[nodiscard]] const Epoch* current() const {
    return current_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t swaps() const {
    return swaps_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<const Epoch*> current_{nullptr};
  std::array<std::atomic<const Epoch*>, kSlots> pins_{};
  std::atomic<std::uint64_t> swaps_{0};
};

// RAII pin for query paths (exception-safe unpin, so a throwing reader can
// never wedge a writer's grace wait).
class EpochPin {
 public:
  EpochPin(EpochManager& manager, std::size_t slot)
      : manager_(&manager), slot_(slot), epoch_(manager.pin(slot)) {}
  ~EpochPin() { manager_->unpin(slot_); }
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

  [[nodiscard]] const Epoch* operator->() const { return epoch_; }
  [[nodiscard]] const Epoch& operator*() const { return *epoch_; }
  [[nodiscard]] const Epoch* get() const { return epoch_; }

 private:
  EpochManager* manager_;
  std::size_t slot_;
  const Epoch* epoch_;
};

struct ServedOptions {
  std::string snapshot_path;  // initial epoch (required)
  std::string listen_path;    // AF_UNIX socket path; empty = stdio session
  std::size_t cache_capacity = 4096;  // per slot, per epoch
  std::size_t max_batch = 4096;       // queries dispatched per executor batch
};

// The resident server: one EpochManager, one executor, a session loop.
class Server {
 public:
  Server(ServedOptions options, net::Executor& executor);

  // Loads the initial epoch from options.snapshot_path. False + error on
  // any open/validation failure (the CLI turns this into exit code 4).
  [[nodiscard]] bool start(std::string* error);

  // Serves one line-delimited session until EOF, `quit`, or a requested
  // shutdown. Usable directly with string streams in tests.
  void serve_session(std::istream& in, std::ostream& out);

  // Serves on the configured transport: the stdio session, or an AF_UNIX
  // listener accepting one session at a time. Returns a process exit code
  // (0 on EOF/quit/graceful shutdown).
  [[nodiscard]] int run();

  // Control operations (also exercised directly by tests and the session
  // loop's control verbs). Writer-side: one caller at a time.
  [[nodiscard]] bool swap_snapshot(const std::string& path,
                                   std::string* error);
  [[nodiscard]] bool apply_delta_file(const std::string& path,
                                      std::string* error);

  [[nodiscard]] EpochManager& epochs() { return epochs_; }

  // Flags a graceful shutdown (async-signal-safe: one atomic store). The
  // session loop drains in-flight queries and returns.
  static void request_shutdown();
  [[nodiscard]] static bool shutdown_requested();
  // Re-arms the process-wide flag (tests run several sessions in-process).
  static void clear_shutdown();
  // Installs SIGTERM/SIGINT handlers that call request_shutdown(), with
  // SA_RESTART off so a blocking read observes the flag promptly.
  static void install_signal_handlers();

 private:
  // The session loop against an abstract line transport.
  struct LineIo {
    std::function<bool(std::string&)> read_line;  // false on EOF
    std::function<bool()> more_buffered;  // input available without blocking
    std::function<void(std::string_view)> write_line;
  };
  void serve(LineIo& io);
  [[nodiscard]] bool is_control(std::string_view line) const;
  // Handles one control verb; sets `quit` when the session should end.
  [[nodiscard]] std::string control(const std::string& line, bool* quit);
  void answer_batch(const std::vector<std::string>& lines, LineIo& io);
  void install_epoch(std::unique_ptr<const Epoch> next, const char* how);
  [[nodiscard]] int run_unix();

  ServedOptions options_;
  net::Executor* executor_;
  EpochManager epochs_;
  std::uint64_t next_epoch_id_ = 0;
};

}  // namespace itm::serve
