// The `.itmsd` delta-snapshot wire format (DESIGN.md decision #13).
//
// A delta carries one epoch step of the map: the per-section changes that
// turn a *base* `.itms` snapshot into a *target* one. Both endpoints are
// named by their header checksums, so a delta can only be applied to the
// exact snapshot it was computed against, and the applier proves success by
// re-serializing and comparing against the target checksum — the applied
// result is byte-identical to the fresh full target snapshot, always.
//
// Layout (little-endian throughout, mirroring `.itms`):
//
//   magic      8 bytes  "ITMSDLT1"
//   version    u32      kDeltaVersion
//   endian     u32      kEndianMarker
//   checksum   u64      FNV-1a 64 over every byte after this field
//   tail:
//     base_checksum    u64   header checksum of the required base snapshot
//     target_checksum  u64   header checksum of the produced target
//     seed             u64   target scenario seed
//     addresses_probed u64   target meta scalars (replaced wholesale)
//     observed_links   u64
//     strings          u8 flag; if 1: count u32 + {len u32, bytes} table
//                      (full replacement — records reference by index, so
//                      the table is order-sensitive)
//     countries        keyed ops, key = country id
//     ases             keyed ops, key = asn
//     prefixes         keyed ops, key = (base, length)
//     endpoints        keyed ops, key = address
//     mappings         keyed ops, key = service id (add/replace carry the
//                      whole entry list — a service's mapping swaps as a
//                      unit, matching how sweeps are produced)
//     links            u8 flag; if 1: count u32 + records (full
//                      replacement — recommender order is meaningful)
//
// Keyed ops are `count u32` then records of {op u8, key, payload}: op 1 =
// add (key must be absent in base), 2 = remove (must be present), 3 =
// replace (must be present); keys strictly ascending. The applier rejects
// any deviation, then rejects any result whose serialization checksum is
// not exactly `target_checksum` — corruption the op checks miss cannot
// survive the final comparison.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace itm::serve {

inline constexpr std::array<char, 8> kDeltaMagic = {'I', 'T', 'M', 'S',
                                                    'D', 'L', 'T', '1'};
inline constexpr std::uint32_t kDeltaVersion = 1;

// Header facts of a validated delta, plus op totals for observability.
struct DeltaInfo {
  std::uint64_t base_checksum = 0;
  std::uint64_t target_checksum = 0;
  std::uint64_t target_seed = 0;
  // Keyed op totals across all sections, plus the two wholesale flags.
  std::uint64_t ops = 0;
  bool replaces_strings = false;
  bool replaces_links = false;
};

// Computes the `.itmsd` delta turning `base_bytes` into `target_bytes`
// (both validated full snapshots). apply_delta(base, result) returns bytes
// equal to `target_bytes`. Returns nullopt and sets `error` when either
// input fails snapshot validation.
[[nodiscard]] std::optional<std::string> diff_snapshots(
    std::string_view base_bytes, std::string_view target_bytes,
    std::string* error);

// Validates `delta_bytes` against `base_bytes` and produces the full
// target snapshot bytes. Strict: wrong base, malformed or misordered ops,
// or a result that does not checksum to the delta's target all fail.
[[nodiscard]] std::optional<std::string> apply_delta(
    std::string_view base_bytes, std::string_view delta_bytes,
    std::string* error);

// Validates the delta container (magic/version/endian/checksum and op
// structure) without a base snapshot; returns its header facts.
[[nodiscard]] std::optional<DeltaInfo> read_delta_info(
    std::string_view delta_bytes, std::string* error);

}  // namespace itm::serve
