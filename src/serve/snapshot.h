// In-memory model of a compiled `.itms` map snapshot.
//
// This is what the reader validates a file into and what the writer
// serializes back out: flat sorted vectors of fixed-shape records, indexed
// by binary search — the serving layer's data model, deliberately divorced
// from the builder's pointer-rich TrafficMap. Record order invariants
// (documented per field) are part of the format; the reader rejects files
// that violate them, which is what makes re-serialization byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4.h"

namespace itm::serve {

// One AS of the public topology slice: identity, classification, and the
// map's activity estimate. `activity` is 0.0 for ASes the map detected no
// activity in (matching inference::ActivityEstimate::score).
struct AsRecord {
  std::uint32_t asn = 0;
  std::uint32_t name_ref = 0;  // index into Snapshot::strings
  std::uint32_t country = 0;
  std::uint32_t type = 0;  // topology::AsType as an integer
  // Bit 0: the map lists this AS as a client (eyeball) network.
  std::uint32_t flags = 0;
  double activity = 0.0;

  [[nodiscard]] bool is_client() const { return (flags & 1u) != 0; }
};

// One detected client prefix with its precompiled origin AS (kNoRef when
// the address plan had no covering aggregate at build time).
struct PrefixRecord {
  std::uint32_t base = 0;    // network byte pattern, host order
  std::uint32_t length = 0;  // mask length, 0..32
  std::uint32_t origin_asn = 0;

  [[nodiscard]] Ipv4Prefix prefix() const {
    return Ipv4Prefix(Ipv4Addr(base), static_cast<std::uint8_t>(length));
  }
};

// One TLS endpoint from the map's serving-infrastructure component.
struct EndpointRecord {
  std::uint32_t address = 0;
  std::uint32_t origin_asn = 0;
  std::uint32_t operator_ref = 0;  // kNoRef when no operator was inferred
  // Bit 0: inferred off-net; bit 1: geolocation present.
  std::uint32_t flags = 0;
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  [[nodiscard]] bool offnet() const { return (flags & 1u) != 0; }
  [[nodiscard]] bool has_geo() const { return (flags & 2u) != 0; }
};

// One (client /24 -> front end) pair of a service's ECS mapping sweep.
struct MappingEntry {
  std::uint32_t prefix_base = 0;
  std::uint32_t prefix_length = 0;
  std::uint32_t address = 0;
};

// A service's full user-to-host mapping, entries sorted by prefix.
struct ServiceMapping {
  std::uint32_t service = 0;
  std::vector<MappingEntry> entries;
};

// One recommended peering link, in recommender order (score descending with
// the recommender's deterministic tie-breaks) — order is meaningful, so it
// is preserved rather than re-sorted.
struct LinkRecord {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  double score = 0.0;
};

struct CountryRecord {
  std::uint32_t country = 0;
  std::uint32_t name_ref = 0;
};

struct Snapshot {
  // Scenario seed the map was built from (provenance, printed by `itm
  // serve`; never used to re-derive data).
  std::uint64_t seed = 0;

  // Map-wide scalars (the meta section).
  std::uint64_t addresses_probed = 0;
  std::uint64_t observed_links = 0;

  // Deduplicated string table; records reference entries by index.
  std::vector<std::string> strings;

  std::vector<CountryRecord> countries;  // sorted by country id, unique
  std::vector<AsRecord> ases;            // sorted by asn, unique
  // Sorted by (base, length), unique and pairwise disjoint — the invariant
  // that makes longest-prefix point lookup a single binary search.
  std::vector<PrefixRecord> prefixes;
  std::vector<EndpointRecord> endpoints;  // sorted by address, unique
  std::vector<ServiceMapping> mappings;   // sorted by service id, unique
  std::vector<LinkRecord> links;          // recommender order
};

}  // namespace itm::serve
