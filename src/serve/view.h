// Zero-copy section views over `.itms` snapshot bytes.
//
// The wire format is flat, little-endian and offset-indexed, so a validated
// file can be *served from in place*: a SnapshotView's record spans either
// borrow the raw section bytes (mmap mode — records are decoded per access,
// a handful of unaligned little-endian loads) or alias the decoded vectors
// of an owned Snapshot. QueryEngine is written against SnapshotView, so the
// batch CLI, the resident server and the tests all exercise one query path
// regardless of where the bytes live.
//
// A view never owns the underlying storage: the Snapshot, mmap, or byte
// buffer it was built over must outlive it (MmapSnapshot and serve::Epoch
// package storage + view together). The small auxiliary indexes a borrowed
// view needs for random access — string offsets, the per-service mapping
// directory — are owned by the view itself and cost a few bytes per entry
// instead of a copy of the section.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "serve/snapshot.h"

namespace itm::serve {

// Unaligned little-endian loads — the borrow-mode record decoders. memcpy
// compiles to a plain load on every target we build for; the explicit
// byte-assembly keeps big-endian hosts correct (mirroring ByteReader).
inline std::uint32_t wire_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t{static_cast<unsigned char>(p[i])} << (8 * i);
  }
  return v;
}
inline std::uint64_t wire_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t{static_cast<unsigned char>(p[i])} << (8 * i);
  }
  return v;
}
inline double wire_f64(const char* p) {
  const std::uint64_t bits = wire_u64(p);
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

// Per-record wire layout: size in bytes and a decoder. The layouts mirror
// snapshot_writer.cpp exactly; the ABI-pairing lint rule keeps them honest.
template <typename Rec>
struct WireCodec;

template <>
struct WireCodec<CountryRecord> {
  static constexpr std::size_t kBytes = 8;
  static CountryRecord decode(const char* p) {
    CountryRecord rec;
    rec.country = wire_u32(p);
    rec.name_ref = wire_u32(p + 4);
    return rec;
  }
};

template <>
struct WireCodec<AsRecord> {
  static constexpr std::size_t kBytes = 28;
  static AsRecord decode(const char* p) {
    AsRecord rec;
    rec.asn = wire_u32(p);
    rec.name_ref = wire_u32(p + 4);
    rec.country = wire_u32(p + 8);
    rec.type = wire_u32(p + 12);
    rec.flags = wire_u32(p + 16);
    rec.activity = wire_f64(p + 20);
    return rec;
  }
};

template <>
struct WireCodec<PrefixRecord> {
  static constexpr std::size_t kBytes = 12;
  static PrefixRecord decode(const char* p) {
    PrefixRecord rec;
    rec.base = wire_u32(p);
    rec.length = wire_u32(p + 4);
    rec.origin_asn = wire_u32(p + 8);
    return rec;
  }
};

template <>
struct WireCodec<EndpointRecord> {
  static constexpr std::size_t kBytes = 32;
  static EndpointRecord decode(const char* p) {
    EndpointRecord rec;
    rec.address = wire_u32(p);
    rec.origin_asn = wire_u32(p + 4);
    rec.operator_ref = wire_u32(p + 8);
    rec.flags = wire_u32(p + 12);
    rec.lat_deg = wire_f64(p + 16);
    rec.lon_deg = wire_f64(p + 24);
    return rec;
  }
};

template <>
struct WireCodec<MappingEntry> {
  static constexpr std::size_t kBytes = 12;
  static MappingEntry decode(const char* p) {
    MappingEntry entry;
    entry.prefix_base = wire_u32(p);
    entry.prefix_length = wire_u32(p + 4);
    entry.address = wire_u32(p + 8);
    return entry;
  }
};

template <>
struct WireCodec<LinkRecord> {
  static constexpr std::size_t kBytes = 16;
  static LinkRecord decode(const char* p) {
    LinkRecord rec;
    rec.a = wire_u32(p);
    rec.b = wire_u32(p + 4);
    rec.score = wire_f64(p + 8);
    return rec;
  }
};

// A read-only random-access span of fixed-shape records backed either by
// decoded structs (owned Snapshot) or by raw wire bytes (borrowed mapping).
// operator[] returns by value: records are a few machine words, and decoding
// on access is what makes the borrow path copy-free.
template <typename Rec>
class RecordSpan {
 public:
  RecordSpan() = default;

  static RecordSpan decoded(const Rec* data, std::size_t count) {
    RecordSpan span;
    span.decoded_ = data;
    span.count_ = count;
    return span;
  }
  static RecordSpan wire(const char* bytes, std::size_t count) {
    RecordSpan span;
    span.wire_ = bytes;
    span.count_ = count;
    return span;
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] Rec operator[](std::size_t i) const {
    if (decoded_ != nullptr) return decoded_[i];
    return WireCodec<Rec>::decode(wire_ + i * WireCodec<Rec>::kBytes);
  }

 private:
  const Rec* decoded_ = nullptr;
  const char* wire_ = nullptr;
  std::size_t count_ = 0;
};

// First index whose record does NOT satisfy `less_than_key` — the span
// analogue of std::lower_bound over a sorted section. The spans' value-
// returning accessors rule out the standard iterator algorithms, and a
// twenty-line binary search beats conforming proxy iterators.
template <typename Rec, typename LessThanKey>
std::size_t span_lower_bound(const RecordSpan<Rec>& span,
                             LessThanKey&& less_than_key) {
  std::size_t lo = 0;
  std::size_t hi = span.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (less_than_key(span[mid])) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// String table view: owned mode aliases the Snapshot's vector; borrowed mode
// keeps (offset, length) pairs into the section payload, so the string bytes
// themselves stay in the mapping.
class StringsView {
 public:
  StringsView() = default;

  static StringsView decoded(const std::string* data, std::size_t count) {
    StringsView view;
    view.decoded_ = data;
    view.count_ = count;
    return view;
  }
  static StringsView wire(const char* base,
                          std::vector<std::pair<std::uint32_t, std::uint32_t>>
                              offsets) {
    StringsView view;
    view.wire_ = base;
    view.count_ = offsets.size();
    view.offsets_ = std::move(offsets);
    return view;
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::string_view operator[](std::size_t i) const {
    if (decoded_ != nullptr) return decoded_[i];
    return {wire_ + offsets_[i].first, offsets_[i].second};
  }

 private:
  const std::string* decoded_ = nullptr;
  const char* wire_ = nullptr;
  std::size_t count_ = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> offsets_;
};

// One service's mapping as the engine consumes it: the id plus a span of
// prefix-sorted entries.
struct ServiceMappingView {
  std::uint32_t service = 0;
  RecordSpan<MappingEntry> entries;
};

// The mapping section: services ascending. Borrowed mode carries a small
// directory (service id, entry offset, entry count) built at validation
// time; entries stay in the mapping.
class MappingsView {
 public:
  struct WireDir {
    std::uint32_t service = 0;
    std::uint32_t entry_count = 0;
    std::uint64_t entry_offset = 0;  // bytes from section start
  };

  MappingsView() = default;

  static MappingsView decoded(const ServiceMapping* data, std::size_t count) {
    MappingsView view;
    view.decoded_ = data;
    view.count_ = count;
    return view;
  }
  static MappingsView wire(const char* base, std::vector<WireDir> dir) {
    MappingsView view;
    view.wire_ = base;
    view.count_ = dir.size();
    view.dir_ = std::move(dir);
    return view;
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] ServiceMappingView operator[](std::size_t i) const {
    ServiceMappingView view;
    if (decoded_ != nullptr) {
      view.service = decoded_[i].service;
      view.entries = RecordSpan<MappingEntry>::decoded(
          decoded_[i].entries.data(), decoded_[i].entries.size());
    } else {
      const WireDir& d = dir_[i];
      view.service = d.service;
      view.entries =
          RecordSpan<MappingEntry>::wire(wire_ + d.entry_offset, d.entry_count);
    }
    return view;
  }

 private:
  const ServiceMapping* decoded_ = nullptr;
  const char* wire_ = nullptr;
  std::size_t count_ = 0;
  std::vector<WireDir> dir_;
};

// The whole snapshot as sections views — what QueryEngine serves from.
struct SnapshotView {
  std::uint64_t seed = 0;
  std::uint64_t addresses_probed = 0;
  std::uint64_t observed_links = 0;

  StringsView strings;
  RecordSpan<CountryRecord> countries;
  RecordSpan<AsRecord> ases;
  RecordSpan<PrefixRecord> prefixes;
  RecordSpan<EndpointRecord> endpoints;
  MappingsView mappings;
  RecordSpan<LinkRecord> links;

  // A view aliasing an owned Snapshot's vectors (which must outlive it).
  [[nodiscard]] static SnapshotView of(const Snapshot& snap) {
    SnapshotView view;
    view.seed = snap.seed;
    view.addresses_probed = snap.addresses_probed;
    view.observed_links = snap.observed_links;
    view.strings =
        StringsView::decoded(snap.strings.data(), snap.strings.size());
    view.countries = RecordSpan<CountryRecord>::decoded(snap.countries.data(),
                                                        snap.countries.size());
    view.ases =
        RecordSpan<AsRecord>::decoded(snap.ases.data(), snap.ases.size());
    view.prefixes = RecordSpan<PrefixRecord>::decoded(snap.prefixes.data(),
                                                      snap.prefixes.size());
    view.endpoints = RecordSpan<EndpointRecord>::decoded(
        snap.endpoints.data(), snap.endpoints.size());
    view.mappings =
        MappingsView::decoded(snap.mappings.data(), snap.mappings.size());
    view.links =
        RecordSpan<LinkRecord>::decoded(snap.links.data(), snap.links.size());
    return view;
  }
};

}  // namespace itm::serve
