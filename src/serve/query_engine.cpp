#include "serve/query_engine.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "obs/metrics.h"
#include "obs/resource.h"
#include "serve/format.h"
#include "topology/as_graph.h"

namespace itm::serve {

namespace {

// Protocol number formatting: shortest-round-trip-ish general format, the
// same precision the JSON exporter uses. Pure function of the double.
std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(10) << v;
  return os.str();
}

// Strict unsigned parse: the whole token must be digits.
std::optional<std::uint64_t> parse_u64(std::string_view token) {
  if (token.empty() || token.size() > 20) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

const char* as_type_name(std::uint32_t type) {
  if (type > static_cast<std::uint32_t>(topology::AsType::kEnterprise)) {
    return "unknown";
  }
  return topology::to_string(static_cast<topology::AsType>(type));
}

}  // namespace

QueryEngine::QueryEngine(SnapshotView view, std::size_t cache_capacity)
    : view_(std::move(view)),
      cache_(cache_capacity),
      latency_(&obs::metrics().quantile("serve.query_latency_us")) {
  // Activity total in record (ASN-ascending) order — the same accumulation
  // order as TrafficMap::total_activity over its key-sorted estimate, so
  // the float result is bit-equal.
  for (std::size_t i = 0; i < view_.ases.size(); ++i) {
    total_activity_ += view_.ases[i].activity;
  }

  endpoints_by_as_.assign(view_.ases.size(), 0);
  operator_endpoints_by_as_.assign(view_.ases.size(), {});
  client_prefixes_by_as_.assign(view_.ases.size(), 0);
  for (std::size_t i = 0; i < view_.endpoints.size(); ++i) {
    const EndpointRecord ep = view_.endpoints[i];
    const std::size_t idx = find_as(ep.origin_asn);
    if (idx == kNone) continue;
    ++endpoints_by_as_[idx];
    if (ep.operator_ref != kNoRef) {
      operator_endpoints_by_as_[idx].push_back(ep.address);
    }
  }
  // Endpoint records are address-sorted, so the per-AS address lists arrive
  // sorted; keep that invariant explicit for the binary searches below.
  for (auto& addrs : operator_endpoints_by_as_) {
    std::sort(addrs.begin(), addrs.end());
  }
  for (std::size_t i = 0; i < view_.prefixes.size(); ++i) {
    const PrefixRecord prefix = view_.prefixes[i];
    if (prefix.origin_asn == kNoRef) continue;
    const std::size_t idx = find_as(prefix.origin_asn);
    if (idx != kNone) ++client_prefixes_by_as_[idx];
  }
}

QueryEngine::QueryEngine(const Snapshot& snapshot, std::size_t cache_capacity)
    : QueryEngine(SnapshotView::of(snapshot), cache_capacity) {}

std::size_t QueryEngine::find_as(std::uint32_t asn) const {
  const std::size_t i = span_lower_bound(
      view_.ases, [asn](const AsRecord& rec) { return rec.asn < asn; });
  if (i == view_.ases.size() || view_.ases[i].asn != asn) return kNone;
  return i;
}

std::optional<PrefixRecord> QueryEngine::find_covering_prefix(
    Ipv4Addr address) const {
  // Records are (base, length)-sorted and pairwise disjoint, so the only
  // candidate container is the last record with base <= address.
  const std::uint32_t bits = address.bits();
  const std::size_t i = span_lower_bound(
      view_.prefixes,
      [bits](const PrefixRecord& rec) { return rec.base <= bits; });
  if (i == 0) return std::nullopt;
  const PrefixRecord candidate = view_.prefixes[i - 1];
  if (!candidate.prefix().contains(address)) return std::nullopt;
  return candidate;
}

QueryEngine::PointAnswer QueryEngine::lookup(Ipv4Addr address) const {
  PointAnswer answer;
  if (const auto rec = find_covering_prefix(address)) {
    answer.client_prefix = rec->prefix();
    if (rec->origin_asn != kNoRef) {
      answer.origin = Asn(rec->origin_asn);
      const std::size_t idx = find_as(rec->origin_asn);
      if (idx != kNone) answer.activity = view_.ases[idx].activity;
    }
  }
  // ECS mappings are keyed by /24 — the sweep granularity — regardless of
  // the detected client prefix's length.
  const Ipv4Prefix key(address, 24);
  const auto wanted = std::pair{key.base().bits(), std::uint32_t{24}};
  for (std::size_t m = 0; m < view_.mappings.size(); ++m) {
    const ServiceMappingView mapping = view_.mappings[m];
    const std::size_t e = span_lower_bound(
        mapping.entries, [&wanted](const MappingEntry& entry) {
          return std::pair{entry.prefix_base, entry.prefix_length} < wanted;
        });
    if (e == mapping.entries.size()) continue;
    const MappingEntry entry = mapping.entries[e];
    if (entry.prefix_base == wanted.first &&
        entry.prefix_length == wanted.second) {
      answer.serving.emplace_back(mapping.service, Ipv4Addr(entry.address));
    }
  }
  return answer;
}

QueryEngine::PointAnswer QueryEngine::lookup(const Ipv4Prefix& prefix) const {
  PointAnswer answer = lookup(prefix.base());
  // Exact-prefix semantics: only report a client prefix on an exact match.
  if (answer.client_prefix && *answer.client_prefix != prefix) {
    answer.client_prefix = std::nullopt;
    answer.origin = std::nullopt;
    answer.activity = 0.0;
  }
  return answer;
}

std::optional<QueryEngine::AsAnswer> QueryEngine::as_answer(Asn asn) const {
  const std::size_t idx = find_as(asn.value());
  if (idx == kNone) return std::nullopt;
  const AsRecord rec = view_.ases[idx];
  AsAnswer answer;
  answer.asn = asn;
  answer.name = view_.strings[rec.name_ref];
  answer.country = CountryId(rec.country);
  answer.type = rec.type;
  answer.activity = rec.activity;
  answer.is_client = rec.is_client();
  answer.endpoints_inside = endpoints_by_as_[idx];
  return answer;
}

std::optional<core::OutageImpact> QueryEngine::outage(Asn failed) const {
  const std::size_t idx = find_as(failed.value());
  if (idx == kNone) return std::nullopt;
  const AsRecord rec = view_.ases[idx];
  core::OutageImpact impact;
  if (total_activity_ > 0) {
    impact.activity_share = rec.activity / total_activity_;
  }
  impact.client_prefixes = client_prefixes_by_as_[idx];
  const auto& inside = operator_endpoints_by_as_[idx];
  impact.servers_inside = inside.size();
  for (std::size_t m = 0; m < view_.mappings.size(); ++m) {
    const ServiceMappingView mapping = view_.mappings[m];
    bool affected = false;
    for (std::size_t e = 0; e < mapping.entries.size() && !affected; ++e) {
      affected = std::binary_search(inside.begin(), inside.end(),
                                    mapping.entries[e].address);
    }
    if (affected) {
      impact.services_served_from.push_back(ServiceId(mapping.service));
    }
  }
  // Mappings are service-ascending, so the vector is already sorted the way
  // TrafficMap::outage_impact sorts it.
  return impact;
}

std::optional<QueryEngine::CountryAnswer> QueryEngine::country(
    CountryId id) const {
  const std::uint32_t wanted = id.value();
  const std::size_t c = span_lower_bound(
      view_.countries,
      [wanted](const CountryRecord& rec) { return rec.country < wanted; });
  if (c == view_.countries.size() || view_.countries[c].country != wanted) {
    return std::nullopt;
  }
  CountryAnswer answer;
  answer.country = id;
  answer.name = view_.strings[view_.countries[c].name_ref];
  for (std::size_t i = 0; i < view_.ases.size(); ++i) {
    const AsRecord as = view_.ases[i];
    if (as.country != wanted) continue;
    answer.activity += as.activity;
    if (as.is_client()) ++answer.client_ases;
    answer.endpoints += endpoints_by_as_[i];
  }
  return answer;
}

std::vector<std::pair<Asn, double>> QueryEngine::top_ases(
    std::size_t k) const {
  std::vector<std::pair<Asn, double>> ranked;
  for (std::size_t i = 0; i < view_.ases.size(); ++i) {
    const AsRecord as = view_.ases[i];
    if (as.activity > 0) ranked.emplace_back(Asn(as.asn), as.activity);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::vector<std::pair<CountryId, double>> QueryEngine::top_countries(
    std::size_t k) const {
  std::vector<std::pair<CountryId, double>> ranked;
  ranked.reserve(view_.countries.size());
  for (std::size_t c = 0; c < view_.countries.size(); ++c) {
    const std::uint32_t country = view_.countries[c].country;
    double total = 0.0;
    for (std::size_t i = 0; i < view_.ases.size(); ++i) {
      const AsRecord as = view_.ases[i];
      if (as.country == country) total += as.activity;
    }
    ranked.emplace_back(CountryId(country), total);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::string QueryEngine::format_point(const PointAnswer& answer) const {
  std::ostringstream os;
  os << "prefix="
     << (answer.client_prefix ? answer.client_prefix->to_string() : "none");
  os << " as=";
  if (answer.origin) {
    os << answer.origin->value();
    const std::size_t idx = find_as(answer.origin->value());
    if (idx != kNone) {
      os << " name=" << view_.strings[view_.ases[idx].name_ref];
    }
  } else {
    os << "none";
  }
  os << " activity=" << fmt(answer.activity) << " serving=";
  if (answer.serving.empty()) {
    os << "none";
  } else {
    for (std::size_t i = 0; i < answer.serving.size(); ++i) {
      if (i) os << ",";
      os << answer.serving[i].first << "@"
         << answer.serving[i].second.to_string();
    }
  }
  return os.str();
}

std::string QueryEngine::execute(const std::string& line) {
  // Tail-latency record for the serving path (cache hits included — a hit
  // is an answer too). The handle was resolved once at construction; one
  // observe() is two relaxed atomics, cheap against a protocol parse.
  const obs::ScopedLatencyUs timer(*latency_);
  ++executed_;
  if (const auto cached = cache_.get(line)) return *cached;
  std::string result = execute_uncached(line);
  cache_.put(line, result);
  return result;
}

std::string QueryEngine::execute_uncached(const std::string& line) const {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return "error: empty query";
  const std::string& verb = tokens[0];

  if (verb == "lookup" && tokens.size() == 2) {
    const auto addr = Ipv4Addr::parse(tokens[1]);
    if (!addr) return "error: bad address '" + tokens[1] + "'";
    return "lookup " + tokens[1] + " " + format_point(lookup(*addr));
  }
  if (verb == "prefix" && tokens.size() == 2) {
    const auto prefix = Ipv4Prefix::parse(tokens[1]);
    if (!prefix) return "error: bad prefix '" + tokens[1] + "'";
    return "prefix " + tokens[1] + " " + format_point(lookup(*prefix));
  }
  if (verb == "as" && tokens.size() == 2) {
    const auto asn = parse_u64(tokens[1]);
    if (!asn) return "error: bad asn '" + tokens[1] + "'";
    const auto answer = as_answer(Asn(static_cast<std::uint32_t>(*asn)));
    if (!answer) return "error: unknown as " + tokens[1];
    std::ostringstream os;
    os << "as " << answer->asn.value() << " name=" << answer->name
       << " country=" << answer->country.value() << " type="
       << as_type_name(answer->type) << " activity=" << fmt(answer->activity)
       << " client=" << (answer->is_client ? 1 : 0) << " endpoints="
       << answer->endpoints_inside;
    return os.str();
  }
  if (verb == "outage" && tokens.size() == 2) {
    const auto asn = parse_u64(tokens[1]);
    if (!asn) return "error: bad asn '" + tokens[1] + "'";
    const auto impact = outage(Asn(static_cast<std::uint32_t>(*asn)));
    if (!impact) return "error: unknown as " + tokens[1];
    std::ostringstream os;
    os << "outage " << *asn << " activity_share="
       << fmt(impact->activity_share) << " client_prefixes="
       << impact->client_prefixes << " servers_inside="
       << impact->servers_inside << " services=";
    if (impact->services_served_from.empty()) {
      os << "none";
    } else {
      for (std::size_t i = 0; i < impact->services_served_from.size(); ++i) {
        if (i) os << ",";
        os << impact->services_served_from[i].value();
      }
    }
    return os.str();
  }
  if (verb == "country" && tokens.size() == 2) {
    const auto id = parse_u64(tokens[1]);
    if (!id) return "error: bad country '" + tokens[1] + "'";
    const auto answer = country(CountryId(static_cast<std::uint32_t>(*id)));
    if (!answer) return "error: unknown country " + tokens[1];
    std::ostringstream os;
    os << "country " << answer->country.value() << " name=" << answer->name
       << " client_ases=" << answer->client_ases << " activity="
       << fmt(answer->activity) << " endpoints=" << answer->endpoints;
    return os.str();
  }
  if ((verb == "top-as" || verb == "top-country") && tokens.size() == 2) {
    const auto k = parse_u64(tokens[1]);
    if (!k || *k == 0) return "error: bad count '" + tokens[1] + "'";
    std::ostringstream os;
    os << verb << " " << *k << " =";
    if (verb == "top-as") {
      const auto ranked = top_ases(static_cast<std::size_t>(*k));
      if (ranked.empty()) os << " none";
      for (std::size_t i = 0; i < ranked.size(); ++i) {
        os << (i ? "," : " ") << ranked[i].first.value() << ":"
           << fmt(ranked[i].second);
      }
    } else {
      const auto ranked = top_countries(static_cast<std::size_t>(*k));
      if (ranked.empty()) os << " none";
      for (std::size_t i = 0; i < ranked.size(); ++i) {
        os << (i ? "," : " ") << ranked[i].first.value() << ":"
           << fmt(ranked[i].second);
      }
    }
    return os.str();
  }
  if (verb == "stats" && tokens.size() == 1) {
    std::size_t client_ases = 0;
    for (std::size_t i = 0; i < view_.ases.size(); ++i) {
      if (view_.ases[i].is_client()) ++client_ases;
    }
    std::ostringstream os;
    os << "stats ases=" << view_.ases.size() << " client_ases=" << client_ases
       << " client_prefixes=" << view_.prefixes.size() << " endpoints="
       << view_.endpoints.size() << " services=" << view_.mappings.size()
       << " recommended_links=" << view_.links.size() << " observed_links="
       << view_.observed_links << " addresses_probed="
       << view_.addresses_probed << " total_activity="
       << fmt(total_activity_) << " seed=" << view_.seed;
    return os.str();
  }
  return "error: unknown query '" + line + "'";
}

}  // namespace itm::serve
