#include "serve/snapshot_reader.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "serve/format.h"

namespace itm::serve {

namespace {

// Local error channel: fail() records the first diagnostic and every
// subsequent check short-circuits, so parse code reads top-to-bottom.
struct Parser {
  std::string error;
  bool failed = false;

  bool fail(const std::string& message) {
    if (!failed) {
      failed = true;
      error = message;
    }
    return false;
  }
};

bool check(Parser& p, bool ok, const char* message) {
  if (!ok) p.fail(message);
  return ok && !p.failed;
}

bool parse_strings(Parser& p, ByteReader r, std::vector<std::string>& out) {
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    const std::uint32_t len = r.u32();
    const auto view = r.bytes(len);
    if (!r.failed()) out.emplace_back(view);
  }
  if (!check(p, !r.failed(), "string table truncated")) return false;
  return check(p, r.exhausted(), "string table has trailing bytes");
}

bool parse_meta(Parser& p, ByteReader r, Snapshot& snap) {
  snap.addresses_probed = r.u64();
  snap.observed_links = r.u64();
  if (!check(p, !r.failed(), "meta section truncated")) return false;
  return check(p, r.exhausted(), "meta section has trailing bytes");
}

bool parse_countries(Parser& p, ByteReader r, const Snapshot& snap,
                     std::vector<CountryRecord>& out) {
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    CountryRecord rec;
    rec.country = r.u32();
    rec.name_ref = r.u32();
    if (r.failed()) break;
    if (!check(p, rec.name_ref < snap.strings.size(),
               "country name reference out of range")) {
      return false;
    }
    if (!out.empty() &&
        !check(p, out.back().country < rec.country,
               "country records not sorted by id")) {
      return false;
    }
    out.push_back(rec);
  }
  if (!check(p, !r.failed(), "country section truncated")) return false;
  return check(p, r.exhausted(), "country section has trailing bytes");
}

bool parse_ases(Parser& p, ByteReader r, const Snapshot& snap,
                std::vector<AsRecord>& out) {
  const std::uint32_t count = r.u32();
  // Reserve bounded by the bytes actually present (28 per record), so a
  // crafted count cannot force a huge allocation before the bounds checks.
  out.reserve(std::min<std::size_t>(count, r.remaining() / 28));
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    AsRecord rec;
    rec.asn = r.u32();
    rec.name_ref = r.u32();
    rec.country = r.u32();
    rec.type = r.u32();
    rec.flags = r.u32();
    rec.activity = r.f64();
    if (r.failed()) break;
    if (!check(p, rec.name_ref < snap.strings.size(),
               "AS name reference out of range")) {
      return false;
    }
    if (!out.empty() && !check(p, out.back().asn < rec.asn,
                               "AS records not sorted by ASN")) {
      return false;
    }
    out.push_back(rec);
  }
  if (!check(p, !r.failed(), "AS section truncated")) return false;
  return check(p, r.exhausted(), "AS section has trailing bytes");
}

bool parse_prefixes(Parser& p, ByteReader r, std::vector<PrefixRecord>& out) {
  const std::uint32_t count = r.u32();
  out.reserve(std::min<std::size_t>(count, r.remaining() / 12));
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    PrefixRecord rec;
    rec.base = r.u32();
    rec.length = r.u32();
    rec.origin_asn = r.u32();
    if (r.failed()) break;
    if (!check(p, rec.length <= 32, "prefix length out of range")) {
      return false;
    }
    if (!out.empty()) {
      const auto& prev = out.back();
      if (!check(p, std::pair{prev.base, prev.length} <
                        std::pair{rec.base, rec.length},
                 "prefix records not sorted")) {
        return false;
      }
      // Disjointness keeps point lookup a single binary search.
      if (!check(p, !prev.prefix().contains(rec.prefix()),
                 "prefix records overlap")) {
        return false;
      }
    }
    out.push_back(rec);
  }
  if (!check(p, !r.failed(), "prefix section truncated")) return false;
  return check(p, r.exhausted(), "prefix section has trailing bytes");
}

bool parse_endpoints(Parser& p, ByteReader r, const Snapshot& snap,
                     std::vector<EndpointRecord>& out) {
  const std::uint32_t count = r.u32();
  out.reserve(std::min<std::size_t>(count, r.remaining() / 32));
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    EndpointRecord rec;
    rec.address = r.u32();
    rec.origin_asn = r.u32();
    rec.operator_ref = r.u32();
    rec.flags = r.u32();
    rec.lat_deg = r.f64();
    rec.lon_deg = r.f64();
    if (r.failed()) break;
    if (!check(p,
               rec.operator_ref == kNoRef ||
                   rec.operator_ref < snap.strings.size(),
               "endpoint operator reference out of range")) {
      return false;
    }
    if (!out.empty() && !check(p, out.back().address < rec.address,
                               "endpoint records not sorted by address")) {
      return false;
    }
    out.push_back(rec);
  }
  if (!check(p, !r.failed(), "endpoint section truncated")) return false;
  return check(p, r.exhausted(), "endpoint section has trailing bytes");
}

bool parse_mappings(Parser& p, ByteReader r,
                    std::vector<ServiceMapping>& out) {
  const std::uint32_t count = r.u32();
  out.reserve(std::min<std::size_t>(count, r.remaining() / 8));
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    ServiceMapping mapping;
    mapping.service = r.u32();
    const std::uint32_t entries = r.u32();
    mapping.entries.reserve(std::min<std::size_t>(
        r.failed() ? 0 : entries, r.remaining() / 12));
    for (std::uint32_t j = 0; j < entries && !r.failed(); ++j) {
      MappingEntry entry;
      entry.prefix_base = r.u32();
      entry.prefix_length = r.u32();
      entry.address = r.u32();
      if (r.failed()) break;
      if (!check(p, entry.prefix_length <= 32,
                 "mapping prefix length out of range")) {
        return false;
      }
      if (!mapping.entries.empty()) {
        const auto& prev = mapping.entries.back();
        if (!check(p,
                   std::pair{prev.prefix_base, prev.prefix_length} <
                       std::pair{entry.prefix_base, entry.prefix_length},
                   "mapping entries not sorted by prefix")) {
          return false;
        }
      }
      mapping.entries.push_back(entry);
    }
    if (r.failed()) break;
    if (!out.empty() && !check(p, out.back().service < mapping.service,
                               "service mappings not sorted by id")) {
      return false;
    }
    out.push_back(std::move(mapping));
  }
  if (!check(p, !r.failed(), "mapping section truncated")) return false;
  return check(p, r.exhausted(), "mapping section has trailing bytes");
}

bool parse_links(Parser& p, ByteReader r, std::vector<LinkRecord>& out) {
  const std::uint32_t count = r.u32();
  out.reserve(std::min<std::size_t>(count, r.remaining() / 16));
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    LinkRecord rec;
    rec.a = r.u32();
    rec.b = r.u32();
    rec.score = r.f64();
    if (!r.failed()) out.push_back(rec);
  }
  if (!check(p, !r.failed(), "link section truncated")) return false;
  return check(p, r.exhausted(), "link section has trailing bytes");
}

}  // namespace

std::optional<Snapshot> read_snapshot(std::string_view bytes,
                                      std::string* error) {
  Parser p;
  const auto fail = [&](const char* message) -> std::optional<Snapshot> {
    p.fail(message);
    if (error != nullptr) *error = p.error;
    obs::count("serve.snapshot.load_rejected");
    return std::nullopt;
  };

  constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8;
  if (bytes.size() < kHeaderSize) return fail("file shorter than header");
  ByteReader header(bytes.substr(0, kHeaderSize));
  const auto magic = header.bytes(kSnapshotMagic.size());
  if (magic != std::string_view(kSnapshotMagic.data(), kSnapshotMagic.size())) {
    return fail("bad magic (not an .itms snapshot)");
  }
  if (header.u32() != kSnapshotVersion) return fail("unsupported version");
  if (header.u32() != kEndianMarker) return fail("endianness marker mismatch");
  const std::uint64_t checksum = header.u64();

  const std::string_view tail = bytes.substr(kHeaderSize);
  if (fnv1a64(tail) != checksum) {
    return fail("checksum mismatch (corrupted snapshot)");
  }

  ByteReader t(tail);
  Snapshot snap;
  snap.seed = t.u64();
  const std::uint32_t section_count = t.u32();
  if (t.u32() != 0) return fail("reserved header field not zero");
  if (t.failed()) return fail("section table truncated");

  // The canonical layout: ascending unique ids, payloads tightly packed
  // immediately after the table, covering the file exactly.
  struct Section {
    std::uint32_t id;
    std::uint64_t offset;
    std::uint64_t size;
  };
  std::vector<Section> sections;
  sections.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    Section s{};
    s.id = t.u32();
    if (t.u32() != 0) return fail("reserved section field not zero");
    s.offset = t.u64();
    s.size = t.u64();
    if (t.failed()) return fail("section table truncated");
    sections.push_back(s);
  }
  std::uint64_t expected_offset = kHeaderSize + 8 + 4 + 4 +
                                  std::uint64_t{section_count} * 24;
  for (const auto& s : sections) {
    if (s.offset != expected_offset) return fail("sections not tightly packed");
    if (s.offset + s.size > bytes.size()) return fail("section out of bounds");
    expected_offset += s.size;
  }
  if (expected_offset != bytes.size()) {
    return fail("trailing bytes after last section");
  }
  for (std::size_t i = 1; i < sections.size(); ++i) {
    if (sections[i - 1].id >= sections[i].id) {
      return fail("sections not in ascending id order");
    }
  }

  const auto payload = [&](SectionId id) -> std::optional<std::string_view> {
    for (const auto& s : sections) {
      if (s.id == static_cast<std::uint32_t>(id)) {
        return bytes.substr(s.offset, s.size);
      }
    }
    return std::nullopt;
  };
  // Every v1 section is required, and no other ids are defined.
  for (const auto& s : sections) {
    if (s.id < 1 || s.id > 8) return fail("unknown section id");
  }
  if (sections.size() != 8) return fail("missing required section");

  bool ok = parse_strings(p, ByteReader(*payload(SectionId::kStrings)),
                          snap.strings);
  ok = ok && parse_meta(p, ByteReader(*payload(SectionId::kMeta)), snap);
  ok = ok && parse_countries(p, ByteReader(*payload(SectionId::kCountries)),
                             snap, snap.countries);
  ok = ok && parse_ases(p, ByteReader(*payload(SectionId::kAsRecords)), snap,
                        snap.ases);
  ok = ok && parse_prefixes(p, ByteReader(*payload(SectionId::kPrefixes)),
                            snap.prefixes);
  ok = ok && parse_endpoints(p, ByteReader(*payload(SectionId::kEndpoints)),
                             snap, snap.endpoints);
  ok = ok && parse_mappings(p, ByteReader(*payload(SectionId::kMappings)),
                            snap.mappings);
  ok = ok && parse_links(p, ByteReader(*payload(SectionId::kLinks)),
                         snap.links);
  if (!ok || p.failed) {
    if (error != nullptr) *error = p.error;
    obs::count("serve.snapshot.load_rejected");
    return std::nullopt;
  }

  obs::count("serve.snapshot.loads");
  obs::count("serve.snapshot.bytes_read", bytes.size());
  return snap;
}

std::optional<Snapshot> read_snapshot(std::istream& is, std::string* error) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) {
    if (error != nullptr) *error = "failed to read snapshot stream";
    return std::nullopt;
  }
  const std::string bytes = buffer.str();
  return read_snapshot(bytes, error);
}

}  // namespace itm::serve
