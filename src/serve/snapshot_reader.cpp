#include "serve/snapshot_reader.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "serve/format.h"

namespace itm::serve {

namespace {

// Local error channel: fail() records the first diagnostic and every
// subsequent check short-circuits, so validation code reads top-to-bottom.
struct Parser {
  std::string error;
  bool failed = false;

  bool fail(const std::string& message) {
    if (!failed) {
      failed = true;
      error = message;
    }
    return false;
  }
};

bool check(Parser& p, bool ok, const char* message) {
  if (!ok) p.fail(message);
  return ok && !p.failed;
}

// Every section is a u32 record count followed by its payload. Each
// validator decodes every record field-by-field through a ByteReader — the
// exact mirror of the writer's emit sequence — and then borrows the raw
// payload as a RecordSpan, so the returned view stays zero-copy while
// truncation, trailing bytes, and per-record invariants are all checked
// once, up front.

bool validate_strings(Parser& p, std::string_view payload, StringsView& out) {
  ByteReader r(payload);
  const std::uint32_t count = r.u32();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> offsets;
  offsets.reserve(std::min<std::size_t>(count, r.remaining() / 4));
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    const std::uint32_t len = r.u32();
    const std::size_t offset = r.position();
    (void)r.bytes(len);
    if (!r.failed()) {
      offsets.emplace_back(static_cast<std::uint32_t>(offset), len);
    }
  }
  if (!check(p, !r.failed(), "string table truncated")) return false;
  if (!check(p, r.exhausted(), "string table has trailing bytes")) {
    return false;
  }
  out = StringsView::wire(payload.data(), std::move(offsets));
  return true;
}

bool validate_meta(Parser& p, std::string_view payload, SnapshotView& view) {
  ByteReader r(payload);
  view.addresses_probed = r.u64();
  view.observed_links = r.u64();
  if (!check(p, !r.failed(), "meta section truncated")) return false;
  return check(p, r.exhausted(), "meta section has trailing bytes");
}

bool validate_countries(Parser& p, std::string_view payload,
                        const SnapshotView& view,
                        RecordSpan<CountryRecord>& out) {
  ByteReader r(payload);
  const std::uint32_t count = r.u32();
  CountryRecord prev;
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    CountryRecord rec;
    rec.country = r.u32();
    rec.name_ref = r.u32();
    if (r.failed()) break;
    if (!check(p, rec.name_ref < view.strings.size(),
               "country name reference out of range")) {
      return false;
    }
    if (i > 0 && !check(p, prev.country < rec.country,
                        "country records not sorted by id")) {
      return false;
    }
    prev = rec;
  }
  if (!check(p, !r.failed(), "country section truncated")) return false;
  if (!check(p, r.exhausted(), "country section has trailing bytes")) {
    return false;
  }
  out = RecordSpan<CountryRecord>::wire(payload.data() + 4, count);
  return true;
}

bool validate_ases(Parser& p, std::string_view payload,
                   const SnapshotView& view, RecordSpan<AsRecord>& out) {
  ByteReader r(payload);
  const std::uint32_t count = r.u32();
  std::uint32_t prev_asn = 0;
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    AsRecord rec;
    rec.asn = r.u32();
    rec.name_ref = r.u32();
    rec.country = r.u32();
    rec.type = r.u32();
    rec.flags = r.u32();
    rec.activity = r.f64();
    if (r.failed()) break;
    if (!check(p, rec.name_ref < view.strings.size(),
               "AS name reference out of range")) {
      return false;
    }
    if (i > 0 &&
        !check(p, prev_asn < rec.asn, "AS records not sorted by ASN")) {
      return false;
    }
    prev_asn = rec.asn;
  }
  if (!check(p, !r.failed(), "AS section truncated")) return false;
  if (!check(p, r.exhausted(), "AS section has trailing bytes")) {
    return false;
  }
  out = RecordSpan<AsRecord>::wire(payload.data() + 4, count);
  return true;
}

bool validate_prefixes(Parser& p, std::string_view payload,
                       RecordSpan<PrefixRecord>& out) {
  ByteReader r(payload);
  const std::uint32_t count = r.u32();
  PrefixRecord prev;
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    PrefixRecord rec;
    rec.base = r.u32();
    rec.length = r.u32();
    rec.origin_asn = r.u32();
    if (r.failed()) break;
    if (!check(p, rec.length <= 32, "prefix length out of range")) {
      return false;
    }
    if (i > 0) {
      if (!check(p, std::pair{prev.base, prev.length} <
                        std::pair{rec.base, rec.length},
                 "prefix records not sorted")) {
        return false;
      }
      // Disjointness keeps point lookup a single binary search.
      if (!check(p, !prev.prefix().contains(rec.prefix()),
                 "prefix records overlap")) {
        return false;
      }
    }
    prev = rec;
  }
  if (!check(p, !r.failed(), "prefix section truncated")) return false;
  if (!check(p, r.exhausted(), "prefix section has trailing bytes")) {
    return false;
  }
  out = RecordSpan<PrefixRecord>::wire(payload.data() + 4, count);
  return true;
}

bool validate_endpoints(Parser& p, std::string_view payload,
                        const SnapshotView& view,
                        RecordSpan<EndpointRecord>& out) {
  ByteReader r(payload);
  const std::uint32_t count = r.u32();
  std::uint32_t prev_address = 0;
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    EndpointRecord rec;
    rec.address = r.u32();
    rec.origin_asn = r.u32();
    rec.operator_ref = r.u32();
    rec.flags = r.u32();
    rec.lat_deg = r.f64();
    rec.lon_deg = r.f64();
    if (r.failed()) break;
    if (!check(p,
               rec.operator_ref == kNoRef ||
                   rec.operator_ref < view.strings.size(),
               "endpoint operator reference out of range")) {
      return false;
    }
    if (i > 0 && !check(p, prev_address < rec.address,
                        "endpoint records not sorted by address")) {
      return false;
    }
    prev_address = rec.address;
  }
  if (!check(p, !r.failed(), "endpoint section truncated")) return false;
  if (!check(p, r.exhausted(), "endpoint section has trailing bytes")) {
    return false;
  }
  out = RecordSpan<EndpointRecord>::wire(payload.data() + 4, count);
  return true;
}

bool validate_mappings(Parser& p, std::string_view payload,
                       MappingsView& out) {
  ByteReader r(payload);
  const std::uint32_t count = r.u32();
  std::vector<MappingsView::WireDir> dir;
  dir.reserve(std::min<std::size_t>(count, r.remaining() / 8));
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    MappingsView::WireDir d;
    d.service = r.u32();
    d.entry_count = r.u32();
    d.entry_offset = r.position();
    MappingEntry prev;
    for (std::uint32_t j = 0; j < d.entry_count && !r.failed(); ++j) {
      MappingEntry entry;
      entry.prefix_base = r.u32();
      entry.prefix_length = r.u32();
      entry.address = r.u32();
      if (r.failed()) break;
      if (!check(p, entry.prefix_length <= 32,
                 "mapping prefix length out of range")) {
        return false;
      }
      if (j > 0 &&
          !check(p,
                 std::pair{prev.prefix_base, prev.prefix_length} <
                     std::pair{entry.prefix_base, entry.prefix_length},
                 "mapping entries not sorted by prefix")) {
        return false;
      }
      prev = entry;
    }
    if (r.failed()) break;
    if (!dir.empty() && !check(p, dir.back().service < d.service,
                               "service mappings not sorted by id")) {
      return false;
    }
    dir.push_back(d);
  }
  if (!check(p, !r.failed(), "mapping section truncated")) return false;
  if (!check(p, r.exhausted(), "mapping section has trailing bytes")) {
    return false;
  }
  out = MappingsView::wire(payload.data(), std::move(dir));
  return true;
}

bool validate_links(Parser& p, std::string_view payload,
                    RecordSpan<LinkRecord>& out) {
  ByteReader r(payload);
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    LinkRecord rec;
    rec.a = r.u32();
    rec.b = r.u32();
    rec.score = r.f64();
    (void)rec;
  }
  if (!check(p, !r.failed(), "link section truncated")) return false;
  if (!check(p, r.exhausted(), "link section has trailing bytes")) {
    return false;
  }
  out = RecordSpan<LinkRecord>::wire(payload.data() + 4, count);
  return true;
}

constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8;

}  // namespace

std::optional<SnapshotView> borrow_snapshot(std::string_view bytes,
                                            std::string* error) {
  Parser p;
  const auto fail = [&](const char* message) -> std::optional<SnapshotView> {
    p.fail(message);
    if (error != nullptr) *error = p.error;
    obs::count("serve.snapshot.load_rejected");
    return std::nullopt;
  };

  if (bytes.size() < kHeaderSize) return fail("file shorter than header");
  ByteReader header(bytes.substr(0, kHeaderSize));
  const auto magic = header.bytes(kSnapshotMagic.size());
  if (magic != std::string_view(kSnapshotMagic.data(), kSnapshotMagic.size())) {
    return fail("bad magic (not an .itms snapshot)");
  }
  if (header.u32() != kSnapshotVersion) return fail("unsupported version");
  if (header.u32() != kEndianMarker) return fail("endianness marker mismatch");
  const std::uint64_t checksum = header.u64();

  const std::string_view tail = bytes.substr(kHeaderSize);
  if (fnv1a64(tail) != checksum) {
    return fail("checksum mismatch (corrupted snapshot)");
  }

  ByteReader t(tail);
  SnapshotView view;
  view.seed = t.u64();
  const std::uint32_t section_count = t.u32();
  if (t.u32() != 0) return fail("reserved header field not zero");
  if (t.failed()) return fail("section table truncated");

  // The canonical layout: ascending unique ids, payloads tightly packed
  // immediately after the table, covering the file exactly.
  struct Section {
    std::uint32_t id;
    std::uint64_t offset;
    std::uint64_t size;
  };
  std::vector<Section> sections;
  sections.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    Section s{};
    s.id = t.u32();
    if (t.u32() != 0) return fail("reserved section field not zero");
    s.offset = t.u64();
    s.size = t.u64();
    if (t.failed()) return fail("section table truncated");
    sections.push_back(s);
  }
  std::uint64_t expected_offset = kHeaderSize + 8 + 4 + 4 +
                                  std::uint64_t{section_count} * 24;
  for (const auto& s : sections) {
    if (s.offset != expected_offset) return fail("sections not tightly packed");
    if (s.offset + s.size > bytes.size()) return fail("section out of bounds");
    expected_offset += s.size;
  }
  if (expected_offset != bytes.size()) {
    return fail("trailing bytes after last section");
  }
  for (std::size_t i = 1; i < sections.size(); ++i) {
    if (sections[i - 1].id >= sections[i].id) {
      return fail("sections not in ascending id order");
    }
  }

  const auto payload = [&](SectionId id) -> std::string_view {
    for (const auto& s : sections) {
      if (s.id == static_cast<std::uint32_t>(id)) {
        return bytes.substr(s.offset, s.size);
      }
    }
    return {};
  };
  // Every v1 section is required, and no other ids are defined.
  for (const auto& s : sections) {
    if (s.id < 1 || s.id > 8) return fail("unknown section id");
  }
  if (sections.size() != 8) return fail("missing required section");

  bool ok = validate_strings(p, payload(SectionId::kStrings), view.strings);
  ok = ok && validate_meta(p, payload(SectionId::kMeta), view);
  ok = ok && validate_countries(p, payload(SectionId::kCountries), view,
                                view.countries);
  ok = ok && validate_ases(p, payload(SectionId::kAsRecords), view, view.ases);
  ok = ok && validate_prefixes(p, payload(SectionId::kPrefixes), view.prefixes);
  ok = ok && validate_endpoints(p, payload(SectionId::kEndpoints), view,
                                view.endpoints);
  ok = ok && validate_mappings(p, payload(SectionId::kMappings), view.mappings);
  ok = ok && validate_links(p, payload(SectionId::kLinks), view.links);
  if (!ok || p.failed) {
    if (error != nullptr) *error = p.error;
    obs::count("serve.snapshot.load_rejected");
    return std::nullopt;
  }

  obs::count("serve.snapshot.loads");
  obs::count("serve.snapshot.bytes_read", bytes.size());
  return view;
}

std::optional<Snapshot> read_snapshot(std::string_view bytes,
                                      std::string* error) {
  const auto view = borrow_snapshot(bytes, error);
  if (!view) return std::nullopt;

  // Materialize owned storage from the validated view. Every invariant was
  // already checked, so this is a straight copy loop; re-serializing the
  // result reproduces `bytes` exactly (the round-trip property test).
  Snapshot snap;
  snap.seed = view->seed;
  snap.addresses_probed = view->addresses_probed;
  snap.observed_links = view->observed_links;
  snap.strings.reserve(view->strings.size());
  for (std::size_t i = 0; i < view->strings.size(); ++i) {
    snap.strings.emplace_back(view->strings[i]);
  }
  snap.countries.reserve(view->countries.size());
  for (std::size_t i = 0; i < view->countries.size(); ++i) {
    snap.countries.push_back(view->countries[i]);
  }
  snap.ases.reserve(view->ases.size());
  for (std::size_t i = 0; i < view->ases.size(); ++i) {
    snap.ases.push_back(view->ases[i]);
  }
  snap.prefixes.reserve(view->prefixes.size());
  for (std::size_t i = 0; i < view->prefixes.size(); ++i) {
    snap.prefixes.push_back(view->prefixes[i]);
  }
  snap.endpoints.reserve(view->endpoints.size());
  for (std::size_t i = 0; i < view->endpoints.size(); ++i) {
    snap.endpoints.push_back(view->endpoints[i]);
  }
  snap.mappings.reserve(view->mappings.size());
  for (std::size_t i = 0; i < view->mappings.size(); ++i) {
    const ServiceMappingView m = view->mappings[i];
    ServiceMapping mapping;
    mapping.service = m.service;
    mapping.entries.reserve(m.entries.size());
    for (std::size_t j = 0; j < m.entries.size(); ++j) {
      mapping.entries.push_back(m.entries[j]);
    }
    snap.mappings.push_back(std::move(mapping));
  }
  snap.links.reserve(view->links.size());
  for (std::size_t i = 0; i < view->links.size(); ++i) {
    snap.links.push_back(view->links[i]);
  }
  return snap;
}

std::optional<Snapshot> read_snapshot(std::istream& is, std::string* error) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) {
    if (error != nullptr) *error = "failed to read snapshot stream";
    return std::nullopt;
  }
  const std::string bytes = buffer.str();
  return read_snapshot(bytes, error);
}

std::uint64_t snapshot_checksum(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) return 0;
  return wire_u64(bytes.data() + 8 + 4 + 4);
}

}  // namespace itm::serve
