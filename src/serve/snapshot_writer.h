// Compiling a built TrafficMap into a `.itms` snapshot and serializing it.
//
// compile_snapshot is the only place the serving layer touches builder
// types: it flattens the map (plus the AS/country slices of the public
// topology it references) into the sorted record vectors of serve::Snapshot.
// Everything downstream — writer, reader, QueryEngine — speaks only the
// snapshot model. Compilation is deterministic: unordered containers are
// drained through sorted snapshots, so a byte-identical map yields a
// byte-identical snapshot at any thread count.
#pragma once

#include <ostream>

#include "core/scenario.h"
#include "core/traffic_map.h"
#include "serve/snapshot.h"

namespace itm::serve {

// Flattens map + topology slices into the snapshot record model.
[[nodiscard]] Snapshot compile_snapshot(const core::TrafficMap& map,
                                        const core::Scenario& scenario);

// Serializes a snapshot in the canonical `.itms` layout (see format.h).
// The same snapshot always produces the same bytes.
void write_snapshot(const Snapshot& snapshot, std::ostream& os);

// Convenience: compile + serialize in one call.
void write_snapshot(const core::TrafficMap& map,
                    const core::Scenario& scenario, std::ostream& os);

}  // namespace itm::serve
