// A small bounded LRU result cache for the query engine.
//
// Deterministic by construction: contents and hit/miss behaviour are a pure
// function of the sequence of get/put calls (capacity eviction is strict
// least-recently-used), so a query replay produces identical cache
// statistics on every run. Not thread-safe — the serving layer gives each
// shard its own engine (and therefore its own cache), which also keeps the
// hit counts independent of thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace itm::serve {

template <typename Value>
class LruCache {
 public:
  // capacity == 0 disables caching entirely (every get misses).
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] std::optional<Value> get(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return it->second->second;
  }

  void put(const std::string& key, Value value) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    if (entries_.size() >= capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
      ++evictions_;
    }
    entries_.emplace_front(key, std::move(value));
    index_.emplace(key, entries_.begin());
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<std::string, Value>> entries_;  // front = most recent
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, Value>>::
                         iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace itm::serve
