// Validating reader for `.itms` snapshots.
//
// The reader trusts nothing: magic/version/endianness, the whole-tail
// checksum, section-table bounds, canonical section order and packing,
// string references, record sort invariants and exact payload consumption
// are all checked before a Snapshot is returned. A snapshot that loads is
// therefore safe to binary-search and will re-serialize byte-identically.
#pragma once

#include <istream>
#include <optional>
#include <string>
#include <string_view>

#include "serve/snapshot.h"

namespace itm::serve {

// Parses and validates a snapshot from raw bytes. Returns nullopt and sets
// `error` (when non-null) to a one-line diagnostic on any violation.
[[nodiscard]] std::optional<Snapshot> read_snapshot(std::string_view bytes,
                                                    std::string* error);

// Stream convenience: slurps the stream and parses. A failed read (e.g. a
// missing file opened upstream) reports through `error` as well.
[[nodiscard]] std::optional<Snapshot> read_snapshot(std::istream& is,
                                                    std::string* error);

}  // namespace itm::serve
