// Validating reader for `.itms` snapshots.
//
// The reader trusts nothing: magic/version/endianness, the whole-tail
// checksum, section-table bounds, canonical section order and packing,
// string references, record sort invariants and exact payload consumption
// are all checked before anything is returned. A snapshot that loads is
// therefore safe to binary-search and will re-serialize byte-identically.
//
// Two load modes share one validation pass:
//   * borrow_snapshot — zero-copy: returns a SnapshotView whose section
//     views point into `bytes` (which must outlive the view). This is the
//     resident server's mmap path; validation runs once, at map time.
//   * read_snapshot — owning: materializes a Snapshot (decoded vectors)
//     from the validated view. The writer/diff/tests path.
#pragma once

#include <istream>
#include <optional>
#include <string>
#include <string_view>

#include "serve/snapshot.h"
#include "serve/view.h"

namespace itm::serve {

// Validates `bytes` as a canonical snapshot and returns section views that
// alias it — no record or string is copied. Returns nullopt and sets
// `error` (when non-null) to a one-line diagnostic on any violation.
[[nodiscard]] std::optional<SnapshotView> borrow_snapshot(
    std::string_view bytes, std::string* error);

// Parses and validates a snapshot from raw bytes into owned storage.
[[nodiscard]] std::optional<Snapshot> read_snapshot(std::string_view bytes,
                                                    std::string* error);

// Stream convenience: slurps the stream and parses. A failed read (e.g. a
// missing file opened upstream) reports through `error` as well.
[[nodiscard]] std::optional<Snapshot> read_snapshot(std::istream& is,
                                                    std::string* error);

// The header checksum field of a canonical snapshot byte blob — the epoch
// identity the delta format keys on. Assumes `bytes` already validated.
[[nodiscard]] std::uint64_t snapshot_checksum(std::string_view bytes);

}  // namespace itm::serve
