#include "serve/mmap.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "serve/snapshot_reader.h"

namespace itm::serve {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::optional<MmapSnapshot> MmapSnapshot::open(const std::string& path,
                                               std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    set_error(error, path + ": " + std::strerror(errno));
    return std::nullopt;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    set_error(error, path + ": " + std::strerror(errno));
    ::close(fd);
    return std::nullopt;
  }
  if (st.st_size <= 0) {
    set_error(error, path + ": empty file");
    ::close(fd);
    return std::nullopt;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  // MAP_PRIVATE keeps us immune to concurrent truncation turning reads into
  // SIGBUS on pages we already validated being rewritten; the file is a
  // build artifact, replaced atomically by rename in practice.
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (data == MAP_FAILED) {
    set_error(error, path + ": mmap: " + std::strerror(errno));
    return std::nullopt;
  }

  std::string validation_error;
  auto view = borrow_snapshot(
      std::string_view(static_cast<const char*>(data), size),
      &validation_error);
  if (!view) {
    ::munmap(data, size);
    set_error(error, path + ": " + validation_error);
    return std::nullopt;
  }

  MmapSnapshot snap;
  snap.data_ = data;
  snap.size_ = size;
  snap.view_ = *view;
  obs::gauge_max("serve.mmap.bytes_mapped", size);
  return snap;
}

MmapSnapshot::MmapSnapshot(MmapSnapshot&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      view_(other.view_) {}

MmapSnapshot& MmapSnapshot::operator=(MmapSnapshot&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    view_ = other.view_;
  }
  return *this;
}

MmapSnapshot::~MmapSnapshot() { reset(); }

void MmapSnapshot::reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace itm::serve
