#include "serve/server.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/resource.h"
#include "serve/delta.h"
#include "serve/snapshot_reader.h"

namespace itm::serve {

namespace {

// Graceful-shutdown flag. The signal handler performs exactly one atomic
// store (itm-lint signal-safety); everything else — drain, journal flush,
// exit — happens on the session loop after the blocking read returns.
std::atomic<bool> g_shutdown{false};

void served_signal_handler(int /*signo*/) {
  g_shutdown.store(true, std::memory_order_relaxed);
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

std::string first_token(std::string_view line) {
  std::size_t b = line.find_first_not_of(" \t");
  if (b == std::string_view::npos) return {};
  std::size_t e = line.find_first_of(" \t", b);
  if (e == std::string_view::npos) e = line.size();
  return std::string(line.substr(b, e - b));
}

std::optional<std::string> slurp_file(const std::string& path,
                                      std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error != nullptr) *error = path + ": cannot open";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) {
    if (error != nullptr) *error = path + ": read failed";
    return std::nullopt;
  }
  return std::move(buffer).str();
}

}  // namespace

// ---- Epoch ----

Epoch::Epoch(std::uint64_t id, std::size_t cache_capacity) : id_(id) {
  caches_.reserve(kSlots);
  for (std::size_t i = 0; i < kSlots; ++i) caches_.emplace_back(cache_capacity);
}

std::unique_ptr<Epoch> Epoch::from_file(std::uint64_t id,
                                        const std::string& path,
                                        std::size_t cache_capacity,
                                        std::string* error) {
  auto mapped = MmapSnapshot::open(path, error);
  if (!mapped) return nullptr;
  std::unique_ptr<Epoch> epoch(new Epoch(id, cache_capacity));
  epoch->checksum_ = snapshot_checksum(mapped->bytes());
  epoch->mapped_ = std::move(*mapped);
  // Engine result cache 0: caching lives in the per-slot caches, whose
  // slot-exclusivity makes them safe; the shared engine stays const.
  epoch->engine_ =
      std::make_unique<QueryEngine>(epoch->mapped_->view(), std::size_t{0});
  return epoch;
}

std::unique_ptr<Epoch> Epoch::from_bytes(std::uint64_t id, std::string bytes,
                                         std::size_t cache_capacity,
                                         std::string* error) {
  std::unique_ptr<Epoch> epoch(new Epoch(id, cache_capacity));
  epoch->blob_ = std::move(bytes);
  const auto view = borrow_snapshot(epoch->blob_, error);
  if (!view) return nullptr;
  epoch->checksum_ = snapshot_checksum(epoch->blob_);
  epoch->engine_ = std::make_unique<QueryEngine>(*view, std::size_t{0});
  return epoch;
}

std::string_view Epoch::bytes() const {
  if (mapped_) return mapped_->bytes();
  return blob_;
}

std::string Epoch::answer(std::size_t slot, const std::string& line) const {
  const obs::ScopedLatencyUs timer(latency_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  LruCache<std::string>& cache = caches_[slot];
  if (auto hit = cache.get(line)) return *hit;
  std::string result = engine_->answer(line);
  cache.put(line, result);
  return result;
}

// ---- EpochManager ----

EpochManager::~EpochManager() {
  delete current_.load(std::memory_order_acquire);
}

std::unique_ptr<const Epoch> EpochManager::install(
    std::unique_ptr<const Epoch> next) {
  const Epoch* old = current_.exchange(next.release(), std::memory_order_seq_cst);
  swaps_.fetch_add(1, std::memory_order_relaxed);
  if (old == nullptr) return nullptr;
  // Grace wait: a reader that pinned `old` before the exchange keeps it
  // alive through its slot; one that pinned after sees the new pointer on
  // its re-check and repins. Once every slot has let go of `old`, no
  // reader can acquire it again (the current pointer no longer holds it).
  for (auto& slot : pins_) {
    while (slot.load(std::memory_order_seq_cst) == old) {
      std::this_thread::yield();
    }
  }
  return std::unique_ptr<const Epoch>(old);
}

const Epoch* EpochManager::pin(std::size_t slot) {
  auto& hazard = pins_[slot];
  const Epoch* epoch = current_.load(std::memory_order_seq_cst);
  for (;;) {
    hazard.store(epoch, std::memory_order_seq_cst);
    const Epoch* again = current_.load(std::memory_order_seq_cst);
    if (again == epoch) return epoch;
    // A swap raced between the load and the pin; chase the new epoch.
    epoch = again;
  }
}

void EpochManager::unpin(std::size_t slot) {
  pins_[slot].store(nullptr, std::memory_order_release);
}

// ---- Server ----

Server::Server(ServedOptions options, net::Executor& executor)
    : options_(std::move(options)), executor_(&executor) {}

bool Server::start(std::string* error) {
  auto epoch = Epoch::from_file(next_epoch_id_, options_.snapshot_path,
                                options_.cache_capacity, error);
  if (!epoch) return false;
  ++next_epoch_id_;
  install_epoch(std::move(epoch), "load");
  return true;
}

void Server::install_epoch(std::unique_ptr<const Epoch> next,
                           const char* how) {
  {
    std::ostringstream fields;
    fields << "\"epoch\": " << next->id() << ", \"how\": \"" << how
           << "\", \"checksum\": \"" << hex64(next->checksum())
           << "\", \"bytes\": " << next->bytes().size();
    obs::recorder().event("epoch.install", fields.str());
  }
  obs::gauge_set("serve.resident.epoch_bytes",
                 static_cast<std::int64_t>(next->bytes().size()));
  obs::gauge_set("serve.resident.epoch_id",
                 static_cast<std::int64_t>(next->id()));
  const auto retired = epochs_.install(std::move(next));
  obs::count("serve.served.swaps");
  if (retired) {
    std::ostringstream fields;
    fields << "\"epoch\": " << retired->id()
           << ", \"queries\": " << retired->queries() << ", \"p50_us\": "
           << retired->latency().quantile(0.50) << ", \"p99_us\": "
           << retired->latency().quantile(0.99) << ", \"p999_us\": "
           << retired->latency().quantile(0.999);
    obs::recorder().event("epoch.retire", fields.str());
  }
}

bool Server::swap_snapshot(const std::string& path, std::string* error) {
  auto next = Epoch::from_file(next_epoch_id_, path, options_.cache_capacity,
                               error);
  if (!next) return false;
  ++next_epoch_id_;
  install_epoch(std::move(next), "swap-snapshot");
  return true;
}

bool Server::apply_delta_file(const std::string& path, std::string* error) {
  const auto delta = slurp_file(path, error);
  if (!delta) return false;
  const Epoch* base = epochs_.current();
  if (base == nullptr) {
    if (error != nullptr) *error = "no epoch loaded";
    return false;
  }
  const obs::Stopwatch watch;
  auto target = apply_delta(base->bytes(), *delta, error);
  if (!target) return false;
  auto next = Epoch::from_bytes(next_epoch_id_, std::move(*target),
                                options_.cache_capacity, error);
  if (!next) return false;
  obs::gauge_set("serve.delta_apply_us",
                 static_cast<std::int64_t>(watch.elapsed_us()),
                 obs::Determinism::kWallClock);
  ++next_epoch_id_;
  install_epoch(std::move(next), "apply-delta");
  return true;
}

bool Server::is_control(std::string_view line) const {
  const std::string verb = first_token(line);
  return verb == "swap-snapshot" || verb == "apply-delta" || verb == "epoch" ||
         verb == "quit";
}

std::string Server::control(const std::string& line, bool* quit) {
  std::istringstream is(line);
  std::string verb;
  is >> verb;
  if (verb == "quit") {
    *quit = true;
    return "ok bye";
  }
  if (verb == "epoch") {
    const Epoch* epoch = epochs_.current();
    if (epoch == nullptr) return "error: no epoch loaded";
    std::ostringstream os;
    os << "epoch " << epoch->id() << " checksum=" << hex64(epoch->checksum())
       << " swaps=" << epochs_.swaps() << " queries=" << epoch->queries()
       << " p50_us=" << epoch->latency().quantile(0.50)
       << " p99_us=" << epoch->latency().quantile(0.99)
       << " p999_us=" << epoch->latency().quantile(0.999);
    return os.str();
  }
  std::string path;
  is >> path;
  if (path.empty()) return "error: " + verb + " needs a path";
  std::string error;
  const bool ok = verb == "swap-snapshot" ? swap_snapshot(path, &error)
                                          : apply_delta_file(path, &error);
  if (!ok) return "error: " + error;
  const Epoch* epoch = epochs_.current();
  std::ostringstream os;
  os << "ok epoch=" << epoch->id() << " checksum=" << hex64(epoch->checksum());
  return os.str();
}

void Server::answer_batch(const std::vector<std::string>& lines, LineIo& io) {
  if (lines.empty()) return;
  std::vector<std::string> answers(lines.size());
  if (lines.size() == 1) {
    const EpochPin pin(epochs_, 0);
    answers[0] = pin->answer(0, lines[0]);
  } else {
    executor_->parallel_for(
        lines.size(), [this, &lines, &answers](const net::Executor::Shard& s) {
          const EpochPin pin(epochs_, s.index);
          for (std::size_t i = s.begin; i < s.end; ++i) {
            answers[i] = pin->answer(s.index, lines[i]);
          }
        });
  }
  for (const std::string& answer : answers) io.write_line(answer);
  obs::count("serve.served.queries", lines.size());
}

void Server::serve(LineIo& io) {
  std::vector<std::string> batch;
  std::string line;
  bool quit = false;
  while (!quit && !shutdown_requested()) {
    if (!io.read_line(line)) break;
    if (is_control(line)) {
      // Control verbs are sequencing points: every query received before
      // the verb is answered against the epoch it arrived under.
      answer_batch(batch, io);
      batch.clear();
      io.write_line(control(line, &quit));
      continue;
    }
    batch.push_back(line);
    if (batch.size() >= options_.max_batch || !io.more_buffered()) {
      answer_batch(batch, io);
      batch.clear();
    }
  }
  // Drain: in-flight queries are answered even when a shutdown signal or
  // EOF ended the session mid-batch.
  answer_batch(batch, io);
}

void Server::serve_session(std::istream& in, std::ostream& out) {
  LineIo io;
  io.read_line = [&in](std::string& line) {
    return static_cast<bool>(std::getline(in, line));
  };
  io.more_buffered = [&in] { return in.rdbuf()->in_avail() > 0; };
  io.write_line = [&out](std::string_view line) {
    out << line << '\n';
  };
  serve(io);
  out.flush();
}

int Server::run() {
  if (!options_.listen_path.empty()) return run_unix();
  serve_session(std::cin, std::cout);
  return 0;
}

int Server::run_unix() {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listener < 0) {
    std::cerr << "error: socket: " << std::strerror(errno) << "\n";
    return 4;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.listen_path.size() >= sizeof addr.sun_path) {
    std::cerr << "error: socket path too long\n";
    ::close(listener);
    return 4;
  }
  std::strncpy(addr.sun_path, options_.listen_path.c_str(),
               sizeof addr.sun_path - 1);
  ::unlink(options_.listen_path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 4) != 0) {
    std::cerr << "error: " << options_.listen_path << ": "
              << std::strerror(errno) << "\n";
    ::close(listener);
    return 4;
  }

  while (!shutdown_requested()) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the flag
      std::cerr << "error: accept: " << std::strerror(errno) << "\n";
      break;
    }

    // Line transport over the connection fd: buffered reads, poll() for
    // "more input already available" so batches form from pipelined
    // queries without blocking the response.
    std::string buffer;
    std::size_t pos = 0;
    bool eof = false;
    LineIo io;
    io.read_line = [fd, &buffer, &pos, &eof](std::string& line) {
      for (;;) {
        const std::size_t nl = buffer.find('\n', pos);
        if (nl != std::string::npos) {
          line.assign(buffer, pos, nl - pos);
          pos = nl + 1;
          if (pos == buffer.size()) {
            buffer.clear();
            pos = 0;
          }
          return true;
        }
        if (eof) return false;
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n > 0) {
          buffer.append(chunk, static_cast<std::size_t>(n));
        } else if (n == 0) {
          eof = true;
          if (pos < buffer.size()) {  // unterminated final line
            line.assign(buffer, pos, buffer.size() - pos);
            buffer.clear();
            pos = 0;
            return true;
          }
          return false;
        } else if (errno != EINTR) {
          eof = true;
          return false;
        } else if (g_shutdown.load(std::memory_order_relaxed)) {
          return false;
        }
      }
    };
    io.more_buffered = [fd, &buffer, &pos] {
      if (pos < buffer.size()) return true;
      pollfd pfd{fd, POLLIN, 0};
      return ::poll(&pfd, 1, 0) > 0 && (pfd.revents & POLLIN) != 0;
    };
    io.write_line = [fd](std::string_view line) {
      std::string out(line);
      out.push_back('\n');
      std::size_t written = 0;
      while (written < out.size()) {
        const ssize_t n = ::write(fd, out.data() + written,
                                  out.size() - written);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;  // peer went away; the session loop ends on read EOF
        }
        written += static_cast<std::size_t>(n);
      }
    };
    serve(io);
    ::close(fd);
  }
  ::close(listener);
  ::unlink(options_.listen_path.c_str());
  return 0;
}

void Server::request_shutdown() {
  g_shutdown.store(true, std::memory_order_relaxed);
}

bool Server::shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void Server::clear_shutdown() {
  g_shutdown.store(false, std::memory_order_relaxed);
}

void Server::install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = served_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking reads return EINTR
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

}  // namespace itm::serve
