// Deterministic query engine over a loaded `.itms` snapshot.
//
// Answers the paper's §2.1 map questions — point lookups (address/prefix →
// origin AS, activity, serving front ends), outage impact, and country/AS
// rollups — from the compiled snapshot alone, with no scenario or builder
// state. Answers are exact: for a snapshot compiled from a map, every
// engine answer equals the corresponding in-memory TrafficMap answer
// (asserted by tests/serve/query_engine_test.cpp).
//
// The engine is built over a SnapshotView, so the same query code serves
// decoded vectors (an owned Snapshot) and raw mapped bytes (MmapSnapshot /
// a delta-applied blob) identically — answers cannot depend on where the
// records live.
//
// The engine also speaks a line-delimited batch protocol (`execute`):
//
//   lookup <a.b.c.d>        point lookup for an address
//   prefix <a.b.c.d/len>    point lookup for an exact client prefix
//   as <asn>                one AS: identity, activity, endpoints inside
//   outage <asn>            outage impact of failing the AS
//   country <id>            per-country rollup
//   top-as <k>              top-k ASes by activity
//   top-country <k>         top-k countries by aggregate activity
//   stats                   snapshot-wide counts
//
// One line in, one line out, in input order; malformed lines produce a
// deterministic "error: ..." line instead of aborting the batch. Results
// are memoized in a bounded LRU cache keyed by the query line; `answer()`
// is the cache-free const entry point the resident server shares one
// engine through (thread-safe: touches only immutable state).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/traffic_map.h"
#include "net/ipv4.h"
#include "obs/quantile.h"
#include "serve/lru_cache.h"
#include "serve/snapshot.h"
#include "serve/view.h"

namespace itm::serve {

class QueryEngine {
 public:
  // The storage behind `view` must outlive the engine (the engine holds
  // the view plus indexes into it). `cache_capacity` bounds the LRU result
  // cache; 0 disables it.
  explicit QueryEngine(SnapshotView view, std::size_t cache_capacity = 1024);
  // Convenience for owned snapshots (which must outlive the engine).
  explicit QueryEngine(const Snapshot& snapshot,
                       std::size_t cache_capacity = 1024);

  // ---- Typed queries ----

  struct PointAnswer {
    // The detected client prefix covering the address (nullopt when the
    // address is outside every detected prefix).
    std::optional<Ipv4Prefix> client_prefix;
    std::optional<Asn> origin;  // origin AS of that prefix
    double activity = 0.0;      // activity score of the origin AS
    // (service id, front end) pairs from the ECS mappings for the /24
    // containing the address, service-ascending.
    std::vector<std::pair<std::uint32_t, Ipv4Addr>> serving;
  };
  [[nodiscard]] PointAnswer lookup(Ipv4Addr address) const;
  [[nodiscard]] PointAnswer lookup(const Ipv4Prefix& prefix) const;

  struct AsAnswer {
    Asn asn;
    std::string_view name;
    CountryId country;
    std::uint32_t type = 0;  // topology::AsType
    double activity = 0.0;
    bool is_client = false;
    std::size_t endpoints_inside = 0;  // TLS endpoints with this origin
  };
  [[nodiscard]] std::optional<AsAnswer> as_answer(Asn asn) const;

  // Exactly TrafficMap::outage_impact on the compiled data (the equality
  // is what makes the snapshot a faithful serving artifact).
  [[nodiscard]] std::optional<core::OutageImpact> outage(Asn failed) const;

  struct CountryAnswer {
    CountryId country;
    std::string_view name;
    std::size_t client_ases = 0;
    double activity = 0.0;  // summed in ASN order
    std::size_t endpoints = 0;
  };
  [[nodiscard]] std::optional<CountryAnswer> country(CountryId id) const;

  // Top-k ASes with positive activity, score descending, ASN ascending on
  // ties. k larger than the candidate set returns all of them.
  [[nodiscard]] std::vector<std::pair<Asn, double>> top_ases(
      std::size_t k) const;
  // Top-k countries by aggregate activity, id ascending on ties.
  [[nodiscard]] std::vector<std::pair<CountryId, double>> top_countries(
      std::size_t k) const;

  // Sum of all per-AS activity (the outage-share denominator).
  [[nodiscard]] double total_activity() const { return total_activity_; }

  // ---- Batch protocol ----

  // Executes one protocol line and returns the one-line answer. Caches
  // results; repeated lines hit the LRU. Not thread-safe (cache + stats).
  [[nodiscard]] std::string execute(const std::string& line);

  // Cache-free protocol answer. Const and thread-safe: any number of
  // threads may call answer() on one engine concurrently — the resident
  // server shares a single per-epoch engine this way, with per-worker
  // caches layered outside.
  [[nodiscard]] std::string answer(const std::string& line) const {
    return execute_uncached(line);
  }

  [[nodiscard]] std::uint64_t cache_hits() const { return cache_.hits(); }
  [[nodiscard]] std::uint64_t cache_misses() const { return cache_.misses(); }
  [[nodiscard]] std::uint64_t cache_evictions() const {
    return cache_.evictions();
  }
  [[nodiscard]] std::uint64_t queries_executed() const { return executed_; }

  // The wall-clock latency record execute() feeds ("serve.query_latency_us"
  // in the registry current at construction).
  [[nodiscard]] const obs::QuantileHistogram& latency() const {
    return *latency_;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  [[nodiscard]] std::string execute_uncached(const std::string& line) const;
  // Record index of the AS (kNone when absent) — indexes, not pointers,
  // because wire-mode records are decoded per access.
  [[nodiscard]] std::size_t find_as(std::uint32_t asn) const;
  [[nodiscard]] std::optional<PrefixRecord> find_covering_prefix(
      Ipv4Addr address) const;
  [[nodiscard]] std::string format_point(const PointAnswer& answer) const;

  SnapshotView view_;
  double total_activity_ = 0.0;
  // Per-AS precomputed indexes (dense by record position, not ASN):
  // endpoint counts, operator-endpoint addresses (sorted), client-prefix
  // counts — the O(1)/O(log n) backing for as/outage queries.
  std::vector<std::size_t> endpoints_by_as_;
  std::vector<std::vector<std::uint32_t>> operator_endpoints_by_as_;
  std::vector<std::size_t> client_prefixes_by_as_;
  LruCache<std::string> cache_;
  obs::QuantileHistogram* latency_;
  std::uint64_t executed_ = 0;
};

}  // namespace itm::serve
