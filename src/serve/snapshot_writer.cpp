#include "serve/snapshot_writer.h"

#include <algorithm>
#include <unordered_set>

#include "net/interner.h"
#include "net/ordered.h"
#include "obs/metrics.h"
#include "serve/format.h"

namespace itm::serve {

namespace {

void write_section(ByteWriter& tail, SectionId id, const ByteWriter& payload,
                   std::vector<std::pair<std::uint32_t, std::uint64_t>>&
                       table) {
  table.emplace_back(static_cast<std::uint32_t>(id), payload.size());
  tail.bytes(payload.buffer());
}

}  // namespace

Snapshot compile_snapshot(const core::TrafficMap& map,
                          const core::Scenario& scenario) {
  Snapshot snap;
  const auto& topo = scenario.topo();
  const bool soa = map.layout == core::DataLayout::kSoa;

  // Under the SoA layout the AsTable already interned AS names (dense ASN
  // order) and country names — exactly this file's string-section prefix —
  // so seed the table from it and only intern operator names below. The
  // legacy path interns from scratch in the same order; both must produce
  // byte-identical sections (layout-equivalence test).
  net::StringTable strings =
      soa ? topo.table.strings() : net::StringTable{};

  snap.seed = scenario.config().seed;
  snap.addresses_probed = map.tls.addresses_probed;
  snap.observed_links = map.public_view.link_count();

  // AS records in dense ASN order; activity via score() so absent ASes get
  // an exact 0.0, matching the in-memory estimate.
  std::unordered_set<std::uint32_t> client_set;
  for (const Asn asn : map.client_ases) client_set.insert(asn.value());
  snap.ases.reserve(topo.graph.size());
  if (soa) {
    const auto& table = topo.table;
    for (std::uint32_t i = 0; i < table.size(); ++i) {
      const Asn asn{i};
      AsRecord rec;
      rec.asn = i;
      rec.name_ref = table.name_ref(asn);
      rec.country = table.country(asn).value();
      rec.type = static_cast<std::uint32_t>(table.type(asn));
      rec.flags = client_set.contains(i) ? 1u : 0u;
      rec.activity = map.activity.score(asn);
      snap.ases.push_back(rec);
    }
  } else {
    for (const auto& as : topo.graph.ases()) {
      AsRecord rec;
      rec.asn = as.asn.value();
      rec.name_ref = strings.intern(as.name);
      rec.country = as.country.value();
      rec.type = static_cast<std::uint32_t>(as.type);
      rec.flags = client_set.contains(as.asn.value()) ? 1u : 0u;
      rec.activity = map.activity.score(as.asn);
      snap.ases.push_back(rec);
    }
  }

  snap.countries.reserve(topo.geography.countries().size());
  for (const auto& country : topo.geography.countries()) {
    CountryRecord rec;
    rec.country = country.id.value();
    rec.name_ref = soa ? topo.table.country_name_ref(country.id)
                       : strings.intern(country.name);
    snap.countries.push_back(rec);
  }

  // Client prefixes sorted for binary search, origins resolved once at
  // compile time so the engine never needs the address plan.
  snap.prefixes.reserve(map.client_prefixes.size());
  for (const Ipv4Prefix& p : map.client_prefixes) {
    PrefixRecord rec;
    rec.base = p.base().bits();
    rec.length = p.length();
    const auto origin = topo.addresses.origin_of(p);
    rec.origin_asn = origin ? origin->value() : kNoRef;
    snap.prefixes.push_back(rec);
  }
  std::sort(snap.prefixes.begin(), snap.prefixes.end(),
            [](const PrefixRecord& a, const PrefixRecord& b) {
              return std::pair{a.base, a.length} < std::pair{b.base, b.length};
            });

  // Endpoints sorted by address (the TLS sweep already merges in address
  // order; the sort is a format guarantee, not a correction).
  std::unordered_map<Ipv4Addr, GeoPoint> located;
  for (const auto& server : map.server_locations) {
    located.emplace(server.address, server.location);
  }
  snap.endpoints.reserve(map.tls.endpoints.size());
  for (const auto& ep : map.tls.endpoints) {
    EndpointRecord rec;
    rec.address = ep.address.bits();
    rec.origin_asn = ep.origin_as.value();
    rec.operator_ref = ep.inferred_operator.empty()
                           ? kNoRef
                           : strings.intern(ep.inferred_operator);
    if (ep.inferred_offnet) rec.flags |= 1u;
    if (const auto it = located.find(ep.address); it != located.end()) {
      rec.flags |= 2u;
      rec.lat_deg = it->second.lat_deg;
      rec.lon_deg = it->second.lon_deg;
    }
    snap.endpoints.push_back(rec);
  }
  std::sort(snap.endpoints.begin(), snap.endpoints.end(),
            [](const EndpointRecord& a, const EndpointRecord& b) {
              return a.address < b.address;
            });

  // Per-service mappings: services ascending, entries prefix-sorted.
  for (const auto sid : net::sorted_keys(map.user_mapping)) {
    ServiceMapping mapping;
    mapping.service = sid;
    const auto& sweep = map.user_mapping.at(sid);
    mapping.entries.reserve(sweep.size());
    for (const auto& [prefix, addr] : net::sorted_items(sweep)) {
      MappingEntry entry;
      entry.prefix_base = prefix.base().bits();
      entry.prefix_length = prefix.length();
      entry.address = addr.bits();
      mapping.entries.push_back(entry);
    }
    snap.mappings.push_back(std::move(mapping));
  }

  snap.links.reserve(map.recommended_links.size());
  for (const auto& link : map.recommended_links) {
    LinkRecord rec;
    rec.a = link.a.value();
    rec.b = link.b.value();
    rec.score = link.score;
    snap.links.push_back(rec);
  }

  snap.strings = strings.take();
  return snap;
}

void write_snapshot(const Snapshot& snapshot, std::ostream& os) {
  // Serialize each section payload, then assemble the canonical file:
  // sections in ascending id order, tightly packed after the table.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> table;  // (id, size)
  ByteWriter sections;

  {
    ByteWriter s;
    s.u32(static_cast<std::uint32_t>(snapshot.strings.size()));
    for (const auto& str : snapshot.strings) {
      s.u32(static_cast<std::uint32_t>(str.size()));
      s.bytes(str);
    }
    write_section(sections, SectionId::kStrings, s, table);
  }
  {
    ByteWriter s;
    s.u64(snapshot.addresses_probed);
    s.u64(snapshot.observed_links);
    write_section(sections, SectionId::kMeta, s, table);
  }
  {
    ByteWriter s;
    s.u32(static_cast<std::uint32_t>(snapshot.countries.size()));
    for (const auto& c : snapshot.countries) {
      s.u32(c.country);
      s.u32(c.name_ref);
    }
    write_section(sections, SectionId::kCountries, s, table);
  }
  {
    ByteWriter s;
    s.u32(static_cast<std::uint32_t>(snapshot.ases.size()));
    for (const auto& as : snapshot.ases) {
      s.u32(as.asn);
      s.u32(as.name_ref);
      s.u32(as.country);
      s.u32(as.type);
      s.u32(as.flags);
      s.f64(as.activity);
    }
    write_section(sections, SectionId::kAsRecords, s, table);
  }
  {
    ByteWriter s;
    s.u32(static_cast<std::uint32_t>(snapshot.prefixes.size()));
    for (const auto& p : snapshot.prefixes) {
      s.u32(p.base);
      s.u32(p.length);
      s.u32(p.origin_asn);
    }
    write_section(sections, SectionId::kPrefixes, s, table);
  }
  {
    ByteWriter s;
    s.u32(static_cast<std::uint32_t>(snapshot.endpoints.size()));
    for (const auto& ep : snapshot.endpoints) {
      s.u32(ep.address);
      s.u32(ep.origin_asn);
      s.u32(ep.operator_ref);
      s.u32(ep.flags);
      s.f64(ep.lat_deg);
      s.f64(ep.lon_deg);
    }
    write_section(sections, SectionId::kEndpoints, s, table);
  }
  {
    ByteWriter s;
    s.u32(static_cast<std::uint32_t>(snapshot.mappings.size()));
    for (const auto& mapping : snapshot.mappings) {
      s.u32(mapping.service);
      s.u32(static_cast<std::uint32_t>(mapping.entries.size()));
      for (const auto& entry : mapping.entries) {
        s.u32(entry.prefix_base);
        s.u32(entry.prefix_length);
        s.u32(entry.address);
      }
    }
    write_section(sections, SectionId::kMappings, s, table);
  }
  {
    ByteWriter s;
    s.u32(static_cast<std::uint32_t>(snapshot.links.size()));
    for (const auto& link : snapshot.links) {
      s.u32(link.a);
      s.u32(link.b);
      s.f64(link.score);
    }
    write_section(sections, SectionId::kLinks, s, table);
  }

  // Tail = seed + section table + payloads; the checksum covers all of it.
  const std::size_t header_size = 8 + 4 + 4 + 8;  // magic,version,endian,sum
  const std::size_t table_size = 8 + 4 + 4 + table.size() * 24;
  ByteWriter tail;
  tail.u64(snapshot.seed);
  tail.u32(static_cast<std::uint32_t>(table.size()));
  tail.u32(0);  // reserved
  std::uint64_t offset = header_size + table_size;
  for (const auto& [id, size] : table) {
    tail.u32(id);
    tail.u32(0);  // reserved
    tail.u64(offset);
    tail.u64(size);
    offset += size;
  }
  tail.bytes(sections.buffer());

  ByteWriter header;
  header.bytes(std::string_view(kSnapshotMagic.data(), kSnapshotMagic.size()));
  header.u32(kSnapshotVersion);
  header.u32(kEndianMarker);
  header.u64(fnv1a64(tail.buffer()));
  os.write(header.buffer().data(),
           static_cast<std::streamsize>(header.size()));
  os.write(tail.buffer().data(), static_cast<std::streamsize>(tail.size()));

  obs::count("serve.snapshot.bytes_written", header.size() + tail.size());
}

void write_snapshot(const core::TrafficMap& map,
                    const core::Scenario& scenario, std::ostream& os) {
  write_snapshot(compile_snapshot(map, scenario), os);
}

}  // namespace itm::serve
