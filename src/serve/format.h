// The `.itms` compiled-snapshot wire format (DESIGN.md decision #9).
//
// A snapshot is the serving-layer artifact: a built TrafficMap plus the
// public topology slices it references, compiled into flat, sorted,
// offset-indexed sections so a QueryEngine can answer point lookups with
// binary searches over mmap-shaped data instead of rebuilding the map.
//
// Layout (all integers little-endian, doubles as IEEE-754 bit patterns):
//
//   magic      8 bytes  "ITMSNAP1"
//   version    u32      kSnapshotVersion
//   endian     u32      kEndianMarker (0x01020304)
//   checksum   u64      FNV-1a 64 over every byte after this field
//   tail:
//     seed           u64   scenario seed the map was built from
//     section_count  u32
//     reserved       u32   must be zero
//     section table  section_count x {id u32, reserved u32, offset u64,
//                                     size u64}   (offsets from file start)
//     section payloads, tightly packed in table order
//
// The format is *canonical*: sections appear in ascending id order, tightly
// packed, with sorted records and no padding or trailing bytes. The reader
// rejects any deviation, which is what makes write -> read -> re-write
// byte-identical (the round-trip property test) and lets the determinism
// gate diff snapshot bytes across thread counts.
//
// Every byte of the file is either explicitly validated (magic, version,
// endian marker) or covered by the checksum (the entire tail), so a single
// flipped bit anywhere is always rejected; a flipped bit inside the checksum
// field itself fails the comparison. Truncation is caught by bounds checks
// before any record is parsed.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace itm::serve {

inline constexpr std::array<char, 8> kSnapshotMagic = {'I', 'T', 'M', 'S',
                                                       'N', 'A', 'P', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::uint32_t kEndianMarker = 0x01020304;

// Section identifiers; the canonical file orders sections ascending by id.
enum class SectionId : std::uint32_t {
  kStrings = 1,    // deduplicated string table (names, operators)
  kMeta = 2,       // scalar map-wide facts
  kCountries = 3,  // country id -> name
  kAsRecords = 4,  // per-AS topology slice + activity, sorted by ASN
  kPrefixes = 5,   // client prefixes + origin AS, sorted for binary search
  kEndpoints = 6,  // TLS endpoints, sorted by address
  kMappings = 7,   // per-service (client /24 -> front end), sorted
  kLinks = 8,      // recommended peering links, recommender order
};

// Sentinel for "no string" references (empty operator, unknown origin).
inline constexpr std::uint32_t kNoRef = 0xffffffffu;

// FNV-1a 64-bit over a byte range; the snapshot checksum. Chosen over a CRC
// for being trivially portable and dependency-free — the goal is corruption
// *detection* for a local artifact, not adversarial integrity.
inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// Appends little-endian scalars to a growing byte buffer. std::string is the
// buffer type so the result can be checksummed and written in one piece.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  // Doubles travel as their IEEE-754 bit pattern: bit-exact round-trips,
  // no text formatting involved.
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void bytes(std::string_view b) { out_.append(b); }

  [[nodiscard]] const std::string& buffer() const { return out_; }
  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

// Bounds-checked little-endian cursor over a byte range. Reads never throw;
// the first out-of-bounds access latches failed() and subsequent reads
// return zero, so parse loops stay simple and the caller checks once.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    if (!require(1)) return 0;
    return static_cast<unsigned char>(bytes_[pos_++]);
  }
  [[nodiscard]] std::uint32_t u32() {
    if (!require(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t{static_cast<unsigned char>(bytes_[pos_ + i])}
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    if (!require(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t{static_cast<unsigned char>(bytes_[pos_ + i])}
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] std::string_view bytes(std::size_t n) {
    if (!require(n)) return {};
    const auto view = bytes_.substr(pos_, n);
    pos_ += n;
    return view;
  }

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const {
    return failed_ ? 0 : bytes_.size() - pos_;
  }
  // True when the cursor consumed the range exactly, with no failure.
  [[nodiscard]] bool exhausted() const {
    return !failed_ && pos_ == bytes_.size();
  }

 private:
  bool require(std::size_t n) {
    if (failed_ || bytes_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace itm::serve
