// Zero-copy snapshot loading: map an `.itms` file read-only and serve
// straight from the page cache (DESIGN.md decision #13).
//
// MmapSnapshot pairs the mapping with a validated SnapshotView whose section
// views alias the mapped bytes. Validation (checksum, invariants — the full
// borrow_snapshot pass) runs exactly once, at map time; after that, queries
// touch only the pages they need and multiple server processes share one
// physical copy of the file.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "serve/view.h"

namespace itm::serve {

// A read-only memory mapping of a validated snapshot file. Move-only RAII:
// the mapping (and the view into it) lives until destruction.
class MmapSnapshot {
 public:
  // Maps and validates `path`. Returns nullopt and sets `error` (when
  // non-null) on open/map failure or any validation failure.
  [[nodiscard]] static std::optional<MmapSnapshot> open(
      const std::string& path, std::string* error);

  MmapSnapshot(MmapSnapshot&& other) noexcept;
  MmapSnapshot& operator=(MmapSnapshot&& other) noexcept;
  MmapSnapshot(const MmapSnapshot&) = delete;
  MmapSnapshot& operator=(const MmapSnapshot&) = delete;
  ~MmapSnapshot();

  // The validated zero-copy view. Valid for the lifetime of this object.
  [[nodiscard]] const SnapshotView& view() const { return view_; }
  // The raw mapped file bytes (header included).
  [[nodiscard]] std::string_view bytes() const {
    return {static_cast<const char*>(data_), size_};
  }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  MmapSnapshot() = default;
  void reset() noexcept;

  void* data_ = nullptr;
  std::size_t size_ = 0;
  SnapshotView view_;
};

}  // namespace itm::serve
