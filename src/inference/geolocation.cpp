#include "inference/geolocation.h"

#include <algorithm>
#include <cmath>

#include "net/ordered.h"

namespace itm::inference {

namespace {

// Weiszfeld geometric median on the (locally flat) lat/lon plane; adequate
// for city-scale clusters.
GeoPoint geometric_median(const std::vector<GeoPoint>& points) {
  GeoPoint current{0, 0};
  for (const auto& p : points) {
    current.lat_deg += p.lat_deg;
    current.lon_deg += p.lon_deg;
  }
  current.lat_deg /= static_cast<double>(points.size());
  current.lon_deg /= static_cast<double>(points.size());
  for (int iter = 0; iter < 20; ++iter) {
    double wsum = 0, lat = 0, lon = 0;
    for (const auto& p : points) {
      const double d = std::max(1.0, haversine_km(current, p));
      const double w = 1.0 / d;
      wsum += w;
      lat += w * p.lat_deg;
      lon += w * p.lon_deg;
    }
    const GeoPoint next{lat / wsum, lon / wsum};
    if (haversine_km(current, next) < 1.0) return next;
    current = next;
  }
  return current;
}

}  // namespace

std::vector<GeolocatedServer> geolocate_servers(
    std::span<const std::unordered_map<Ipv4Prefix, Ipv4Addr>* const> sweeps,
    const PrefixLocator& locate) {
  std::unordered_map<Ipv4Addr, std::vector<GeoPoint>> clients_of;
  for (const auto* sweep : sweeps) {
    // Prefix-sorted: the Weiszfeld median below is a float iteration whose
    // result depends on point order (itm-lint: nondet-iteration).
    for (const auto& [prefix, server] : net::sorted_items(*sweep)) {
      if (const auto loc = locate(prefix)) {
        clients_of[server].push_back(*loc);
      }
    }
  }
  std::vector<GeolocatedServer> out;
  out.reserve(clients_of.size());
  for (const auto& [server, points] : clients_of) {
    out.push_back(GeolocatedServer{server, geometric_median(points),
                                   points.size()});
  }
  std::sort(out.begin(), out.end(),
            [](const GeolocatedServer& a, const GeolocatedServer& b) {
              return a.address < b.address;
            });
  return out;
}

std::vector<GeolocatedServer> geolocate_servers(
    const std::vector<std::unordered_map<Ipv4Prefix, Ipv4Addr>>& sweeps,
    const PrefixLocator& locate) {
  std::vector<const std::unordered_map<Ipv4Prefix, Ipv4Addr>*> pointers;
  pointers.reserve(sweeps.size());
  for (const auto& sweep : sweeps) pointers.push_back(&sweep);
  return geolocate_servers(pointers, locate);
}

GeolocationScore score_geolocation(
    const std::vector<GeolocatedServer>& inferred,
    const std::function<std::optional<GeoPoint>(Ipv4Addr)>& truth) {
  GeolocationScore score;
  std::vector<double> errors;
  for (const auto& server : inferred) {
    const auto actual = truth(server.address);
    if (!actual) continue;
    errors.push_back(haversine_km(server.location, *actual));
  }
  score.located = errors.size();
  if (errors.empty()) return score;
  std::sort(errors.begin(), errors.end());
  score.median_error_km = errors[errors.size() / 2];
  score.frac_within_500km =
      static_cast<double>(std::count_if(errors.begin(), errors.end(),
                                        [](double e) { return e <= 500.0; })) /
      static_cast<double>(errors.size());
  return score;
}

}  // namespace itm::inference
