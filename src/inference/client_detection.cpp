#include "inference/client_detection.h"

#include <algorithm>

#include "net/ordered.h"

namespace itm::inference {

ClientCoverage evaluate_prefixes(std::span<const Ipv4Prefix> detected,
                                 const traffic::UserBase& users,
                                 const traffic::TrafficMatrix& matrix,
                                 HypergiantId reference) {
  ClientCoverage cov;
  cov.detected = detected.size();
  cov.true_universe = users.size();

  std::unordered_set<Ipv4Prefix> detected_set(detected.begin(),
                                              detected.end());
  double covered_bytes = 0, total_bytes = 0;
  double covered_users = 0;
  const auto prefixes = users.all();
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    const double bytes = matrix.prefix_hypergiant_bytes(i, reference);
    total_bytes += bytes;
    if (detected_set.contains(prefixes[i].prefix)) {
      covered_bytes += bytes;
      covered_users += prefixes[i].users;
    }
  }
  cov.traffic_coverage = total_bytes > 0 ? covered_bytes / total_bytes : 0.0;
  cov.user_coverage =
      users.total_users() > 0 ? covered_users / users.total_users() : 0.0;

  std::size_t false_positives = 0;
  for (const Ipv4Prefix& p : detected) {
    if (users.find(p) == nullptr) ++false_positives;
  }
  cov.false_positive_rate =
      detected.empty()
          ? 0.0
          : static_cast<double>(false_positives) / detected.size();
  return cov;
}

ClientCoverage evaluate_ases(std::span<const Asn> detected,
                             const traffic::UserBase& users,
                             const traffic::TrafficMatrix& matrix,
                             HypergiantId reference,
                             const topology::Topology& topo) {
  ClientCoverage cov;
  cov.detected = detected.size();
  cov.true_universe = topo.accesses.size();

  std::unordered_set<std::uint32_t> detected_set;
  for (const Asn a : detected) detected_set.insert(a.value());

  double covered_bytes = 0, total_bytes = 0, covered_users = 0;
  const auto prefixes = users.all();
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    const double bytes = matrix.prefix_hypergiant_bytes(i, reference);
    total_bytes += bytes;
    if (detected_set.contains(prefixes[i].asn.value())) {
      covered_bytes += bytes;
      covered_users += prefixes[i].users;
    }
  }
  cov.traffic_coverage = total_bytes > 0 ? covered_bytes / total_bytes : 0.0;
  cov.user_coverage =
      users.total_users() > 0 ? covered_users / users.total_users() : 0.0;

  std::size_t false_positives = 0;
  for (const Asn a : detected) {
    if (users.as_users(a) <= 0) ++false_positives;
  }
  cov.false_positive_rate =
      detected.empty()
          ? 0.0
          : static_cast<double>(false_positives) / detected.size();
  return cov;
}

std::vector<Asn> combine_detected(std::span<const Ipv4Prefix> prefixes,
                                  std::span<const Asn> ases,
                                  const topology::AddressPlan& plan) {
  std::unordered_set<std::uint32_t> set;
  for (const Asn a : ases) set.insert(a.value());
  for (const Ipv4Prefix& p : prefixes) {
    if (const auto asn = plan.origin_of(p)) set.insert(asn->value());
  }
  std::vector<Asn> out;
  out.reserve(set.size());
  for (const auto v : set) out.push_back(Asn(v));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> apnic_coverage_by_country(
    std::span<const Asn> detected, const apnic::ApnicEstimates& apnic,
    const topology::Topology& topo) {
  const std::size_t countries = topo.geography.countries().size();
  std::vector<double> covered(countries, 0.0), total(countries, 0.0);
  std::unordered_set<std::uint32_t> detected_set;
  for (const Asn a : detected) detected_set.insert(a.value());
  // Key-sorted iteration: the per-country float sums must not depend on
  // hash layout (itm-lint: nondet-iteration).
  for (const auto& [asn, estimate] : net::sorted_items(apnic.by_as())) {
    const auto country = topo.graph.info(Asn(asn)).country.value();
    total[country] += estimate;
    if (detected_set.contains(asn)) covered[country] += estimate;
  }
  std::vector<double> out(countries, 0.0);
  for (std::size_t c = 0; c < countries; ++c) {
    out[c] = total[c] > 0 ? covered[c] / total[c] : 0.0;
  }
  return out;
}

}  // namespace itm::inference
