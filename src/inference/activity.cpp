#include "inference/activity.h"

#include <cmath>

#include "net/ordered.h"

namespace itm::inference {

// Float accumulation below iterates key-sorted snapshots throughout: the
// estimates feed ranked outputs, and summation order must be a function of
// the data, not of hash layout (itm-lint: nondet-iteration).

ActivityEstimate activity_from_cache_hits(const scan::CacheProber& prober,
                                          const topology::AddressPlan& plan) {
  ActivityEstimate est;
  // Zero-hit ASes carry no signal (every probed AS would otherwise appear
  // with rate 0, and a hard zero would annihilate other signals in the
  // geometric-mean combination).
  for (const auto& [asn, rate] : net::sorted_items(prober.hit_rate_by_as(plan))) {
    if (rate > 0) est.by_as.emplace(asn, rate);
  }
  return est;
}

ActivityEstimate activity_from_root_logs(const scan::RootCrawlResult& crawl) {
  ActivityEstimate est;
  for (const auto& [asn, count] : net::sorted_items(crawl.queries_by_as)) {
    est.by_as.emplace(asn, static_cast<double>(count));
  }
  return est;
}

ActivityEstimate activity_from_root_logs_with_associations(
    const dns::DnsSystem& dns, const topology::AddressPlan& plan) {
  ActivityEstimate est;
  const auto& associations = dns.resolver_associations();
  // Sorted resolvers and sorted association samples: several resolvers can
  // redistribute weight onto the same AS, so the += order reaches by_as.
  for (const auto& [resolver, count] : net::sorted_items(dns.roots().crawl())) {
    const auto assoc = associations.find(resolver);
    if (assoc != associations.end() && !assoc->second.empty()) {
      double total = 0;
      for (const auto& [asn, samples] : net::sorted_items(assoc->second)) {
        total += static_cast<double>(samples);
      }
      for (const auto& [asn, samples] : net::sorted_items(assoc->second)) {
        est.by_as[asn] += static_cast<double>(count) *
                          static_cast<double>(samples) / total;
      }
    } else if (const auto asn = plan.origin_of(resolver)) {
      est.by_as[asn->value()] += static_cast<double>(count);
    }
  }
  return est;
}

ActivityEstimate combine_activity(const ActivityEstimate& a,
                                  const ActivityEstimate& b) {
  ActivityEstimate out;
  // Normalize each signal to mean 1 over its support before combining so
  // neither scale dominates.
  const auto normalized = [](const ActivityEstimate& e) {
    double mean = 0;
    for (const auto& [asn, v] : net::sorted_items(e.by_as)) mean += v;
    mean = e.by_as.empty() ? 1.0 : mean / static_cast<double>(e.by_as.size());
    std::unordered_map<std::uint32_t, double> out;
    for (const auto& [asn, v] : net::sorted_items(e.by_as)) {
      out.emplace(asn, v / mean);
    }
    return out;
  };
  const auto na = normalized(a);
  const auto nb = normalized(b);
  for (const auto& [asn, v] : net::sorted_items(na)) {
    const auto it = nb.find(asn);
    out.by_as[asn] = it == nb.end() ? v : std::sqrt(v * it->second);
  }
  for (const auto& [asn, v] : net::sorted_items(nb)) {
    out.by_as.try_emplace(asn, v);
  }
  return out;
}

RankAgreement score_activity(const ActivityEstimate& estimate,
                             const traffic::UserBase& users,
                             const topology::Topology& topo) {
  std::vector<double> est, truth;
  for (const Asn asn : topo.accesses) {
    const double t = users.as_activity(asn);
    const double e = estimate.score(asn);
    if (t <= 0 || e <= 0) continue;
    truth.push_back(t);
    est.push_back(e);
  }
  RankAgreement agreement;
  agreement.compared = est.size();
  agreement.spearman = spearman(est, truth);
  agreement.kendall_tau = kendall_tau(est, truth);
  std::vector<double> le(est.size()), lt(truth.size());
  for (std::size_t i = 0; i < est.size(); ++i) {
    le[i] = std::log(est[i]);
    lt[i] = std::log(truth[i]);
  }
  agreement.pearson_log = pearson(le, lt);
  return agreement;
}

}  // namespace itm::inference
