// Relative user-activity estimation (§3.1.3).
//
// Three estimators, combined the way the paper suggests:
//   * cache-hit-rate per AS from repeated ECS cache probing — prefixes with
//     more activity populate caches for a larger fraction of the time;
//   * Chromium query counts per resolver-hosting AS from root logs —
//     roughly proportional to the number of active browsers;
//   * a combined score (geometric mean when both signals exist).
// Evaluation is rank-based (Spearman / Kendall vs. ground truth), since the
// paper argues relative levels suffice for most use cases.
#pragma once

#include <unordered_map>

#include "net/stats.h"
#include "scan/cache_prober.h"
#include "scan/root_crawler.h"
#include "traffic/user_base.h"

namespace itm::inference {

struct ActivityEstimate {
  // Per-AS relative activity scores (arbitrary scale, compare ranks).
  std::unordered_map<std::uint32_t, double> by_as;

  [[nodiscard]] double score(Asn asn) const {
    const auto it = by_as.find(asn.value());
    return it == by_as.end() ? 0.0 : it->second;
  }
};

[[nodiscard]] ActivityEstimate activity_from_cache_hits(
    const scan::CacheProber& prober, const topology::AddressPlan& plan);

[[nodiscard]] ActivityEstimate activity_from_root_logs(
    const scan::RootCrawlResult& crawl);

// Root-log activity refined with page-embedded resolver-client association
// samples (§3.1.3): each resolver's query count is redistributed over the
// client ASes observed using it, recovering networks that outsource their
// resolvers and splitting public-resolver volume back onto real clients.
// Resolvers with no association samples fall back to origin-AS attribution.
[[nodiscard]] ActivityEstimate activity_from_root_logs_with_associations(
    const dns::DnsSystem& dns, const topology::AddressPlan& plan);

// Geometric-mean combination; falls back to whichever signal exists.
[[nodiscard]] ActivityEstimate combine_activity(const ActivityEstimate& a,
                                                const ActivityEstimate& b);

struct RankAgreement {
  double spearman = 0.0;
  double kendall_tau = 0.0;
  double pearson_log = 0.0;  // Pearson on log-scores, both > 0 only
  std::size_t compared = 0;
};

// Rank agreement between an estimate and ground-truth per-AS activity,
// over ASes where both are positive.
[[nodiscard]] RankAgreement score_activity(const ActivityEstimate& estimate,
                                           const traffic::UserBase& users,
                                           const topology::Topology& topo);

}  // namespace itm::inference
