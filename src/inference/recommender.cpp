#include "inference/recommender.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "net/ordered.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace itm::inference {

using topology::PeeringPolicy;
using topology::Relation;
using topology::TrafficProfile;

namespace {

// All registered pairs declaring a common facility.
std::vector<std::pair<Asn, Asn>> colocated_pairs(
    const topology::PeeringDb& pdb) {
  std::unordered_map<std::uint32_t, std::vector<Asn>> members;
  for (const auto& rec : pdb.records()) {
    for (const auto f : rec.facilities) {
      members[f.value()].push_back(rec.asn);
    }
  }
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::pair<Asn, Asn>> pairs;
  // Facility-sorted iteration: the pair order survives into the candidate
  // list, where equal scores would otherwise tie-break by hash layout
  // (itm-lint: nondet-iteration).
  for (const auto& [facility, list] : net::sorted_items(members)) {
    (void)facility;
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        if (seen.insert(asn_pair_key(list[i], list[j])).second) {
          pairs.emplace_back(list[i], list[j]);
        }
      }
    }
  }
  return pairs;
}

std::size_t shared_declared_facilities(const topology::PeeringDbRecord& a,
                                       const topology::PeeringDbRecord& b) {
  std::size_t shared = 0;
  for (const auto fa : a.facilities) {
    for (const auto fb : b.facilities) {
      if (fa == fb) {
        ++shared;
        break;
      }
    }
  }
  return shared;
}

// Operational-knowledge priors over declared attributes.
double policy_prior(PeeringPolicy a, PeeringPolicy b, int min_level) {
  const bool a_restrictive = a == PeeringPolicy::kRestrictive;
  const bool b_restrictive = b == PeeringPolicy::kRestrictive;
  if (a_restrictive || b_restrictive) {
    // Restrictive networks only entertain very large peers.
    return min_level >= 4 ? 0.25 : 0.02;
  }
  const int open_count = (a == PeeringPolicy::kOpen ? 1 : 0) +
                         (b == PeeringPolicy::kOpen ? 1 : 0);
  switch (open_count) {
    case 2: return 0.9;
    case 1: return 0.5;
    default: return 0.3;
  }
}

int direction_of(TrafficProfile p) {
  switch (p) {
    case TrafficProfile::kHeavyOutbound: return 2;
    case TrafficProfile::kMostlyOutbound: return 1;
    case TrafficProfile::kBalanced: return 0;
    case TrafficProfile::kMostlyInbound: return -1;
    case TrafficProfile::kHeavyInbound: return -2;
  }
  return 0;
}

double profile_prior(TrafficProfile a, TrafficProfile b) {
  const int prod = direction_of(a) * direction_of(b);
  if (prod < 0) return 1.5;  // complementary: content <-> eyeball
  if (prod > 1) return 0.7;  // both strongly same-direction
  return 1.0;
}

}  // namespace

PeeringRecommender::PeeringRecommender(const topology::PeeringDb& pdb,
                                       const topology::AsGraph& observed,
                                       const RecommenderConfig& config)
    : pdb_(&pdb), observed_(&observed), config_(config) {
  // Observed peer sets, for the collaborative term.
  peer_sets_.resize(observed.size());
  for (std::size_t v = 0; v < observed.size(); ++v) {
    for (const auto& nb :
         observed.neighbors(Asn(static_cast<std::uint32_t>(v)))) {
      if (nb.relation == Relation::kPeer) {
        peer_sets_[v].push_back(nb.asn.value());
      }
    }
    std::sort(peer_sets_[v].begin(), peer_sets_[v].end());
  }
}

double PeeringRecommender::score(Asn a, Asn b) const {
  const auto* ra = pdb_->lookup(a);
  const auto* rb = pdb_->lookup(b);
  if (ra == nullptr || rb == nullptr) return 0.0;
  const std::size_t shared = shared_declared_facilities(*ra, *rb);
  if (shared == 0) return 0.0;

  const int min_level = std::min(ra->traffic_level, rb->traffic_level);
  const int max_level = std::max(ra->traffic_level, rb->traffic_level);
  double prior = policy_prior(ra->policy, rb->policy, min_level) *
                 profile_prior(ra->profile, rb->profile) *
                 std::min(1.5, std::sqrt(static_cast<double>(shared)));
  // Flattening: a content-heavy giant meeting a *large* eyeball peers
  // almost always, regardless of declared policy conservatism; with a small
  // eyeball the giant rarely bothers (PNIs are sized deals).
  const auto eyeball_level = [&]() -> int {
    if (ra->info_type == "Content" &&
        max_level >= config_.content_heavy_level &&
        rb->info_type == "Cable/DSL/ISP") {
      return rb->traffic_level;
    }
    if (rb->info_type == "Content" &&
        max_level >= config_.content_heavy_level &&
        ra->info_type == "Cable/DSL/ISP") {
      return ra->traffic_level;
    }
    return -1;
  }();
  if (eyeball_level >= 4) {
    prior *= config_.flattening_boost;
  } else if (eyeball_level >= 0 && eyeball_level <= 2) {
    prior *= 0.3;
  }

  const auto& pa = peer_sets_[a.value()];
  const auto& pb = peer_sets_[b.value()];
  double similarity = 0.0;
  if (!pa.empty() && !pb.empty()) {
    std::size_t common = 0;
    auto ia = pa.begin();
    auto ib = pb.begin();
    while (ia != pa.end() && ib != pb.end()) {
      if (*ia < *ib) ++ia;
      else if (*ib < *ia) ++ib;
      else {
        ++common;
        ++ia;
        ++ib;
      }
    }
    similarity = static_cast<double>(common) /
                 std::sqrt(static_cast<double>(pa.size()) *
                           static_cast<double>(pb.size()));
  }
  return prior * (1.0 - config_.similarity_weight +
                  config_.similarity_weight * (1.0 + similarity));
}

std::vector<LinkCandidate> PeeringRecommender::recommend(
    std::size_t top_k) const {
  ITM_SPAN("inference.recommend");
  std::vector<LinkCandidate> candidates;
  std::uint64_t scored = 0;
  for (const auto& [a, b] : colocated_pairs(*pdb_)) {
    if (observed_->adjacent(a, b)) continue;
    ++scored;
    const double s = score(a, b);
    if (s > 0) candidates.push_back(LinkCandidate{a, b, s});
  }
  // Ties broken on (a, b) so the top-k cut is fully deterministic.
  std::sort(candidates.begin(), candidates.end(),
            [](const LinkCandidate& x, const LinkCandidate& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  if (candidates.size() > top_k) candidates.resize(top_k);
  obs::count("inference.recommender.pairs_scored", scored);
  obs::count("inference.recommender.links_recommended", candidates.size());
  return candidates;
}

RecommenderScore score_recommendations(
    const std::vector<LinkCandidate>& candidates,
    const topology::AsGraph& truth, const routing::PublicView& view) {
  RecommenderScore score;
  score.recommended = candidates.size();
  // "Correct" mirrors the recall denominator exactly: a true *peering*
  // link that the public view is missing. (Counting any true adjacency
  // would inflate precision and let recall exceed 1.)
  for (const auto& c : candidates) {
    if (truth.relation(c.a, c.b) == Relation::kPeer &&
        !view.observed(c.a, c.b)) {
      ++score.correct;
    }
  }
  for (const auto& link : truth.links()) {
    if (link.a_to_b == Relation::kPeer && !view.observed(link.a, link.b)) {
      ++score.missing_total;
    }
  }
  return score;
}

topology::AsGraph augment_graph(const topology::AsGraph& observed,
                                const std::vector<LinkCandidate>& candidates) {
  auto out = topology::copy_graph(observed,
                                  [](const topology::Link&) { return true; });
  for (const auto& c : candidates) {
    if (!out.adjacent(c.a, c.b)) out.add_peering(c.a, c.b);
  }
  return out;
}

}  // namespace itm::inference
