// Evaluating the inferred user-to-host mapping (§3.2.3).
//
// ECS probing yields exact mappings for ECS-supporting DNS-redirected
// services; for anycast and custom-URL services the researcher must assume
// clients reach their *optimal* site. This module measures how much traffic
// each regime covers and how often the optimality assumption holds — the
// paper's "31% of routes / 60% of users / 80% within 500 km" themes.
#pragma once

#include "cdn/mapping.h"
#include "cdn/services.h"
#include "traffic/demand.h"
#include "traffic/user_base.h"

namespace itm::inference {

struct MappingCoverage {
  // Share of total bytes in each inference regime.
  double ecs_dns_share = 0.0;        // exactly inferable via ECS probing
  double non_ecs_dns_share = 0.0;    // DNS-redirected but no ECS
  double anycast_share = 0.0;        // needs the optimality assumption
  double custom_url_share = 0.0;     // assumed optimal (paper argument)
  double single_site_share = 0.0;    // trivially known (one site)
};

[[nodiscard]] MappingCoverage mapping_coverage(
    const cdn::ServiceCatalog& catalog, const traffic::TrafficMatrix& matrix);

struct AnycastOptimality {
  // Unweighted: fraction of client ASes whose catchment is the
  // geo-closest site ("31% of routes").
  double routes_optimal = 0.0;
  // User-weighted: fraction of users landing on their optimal site
  // ("60% of users").
  double users_optimal = 0.0;
  // User-weighted fraction within 500 km of the optimal site ("80%").
  double users_within_500km = 0.0;
  std::size_t ases_considered = 0;
};

// Scores one hypergiant's anycast catchments against geographic optimum.
[[nodiscard]] AnycastOptimality anycast_optimality(
    const topology::Topology& topo, const traffic::UserBase& users,
    const cdn::ClientMapper& mapper, HypergiantId hg);

}  // namespace itm::inference
