// Client-centric server geolocation (§3.2.2, approach 3).
//
// A front end discovered by TLS scanning has no public location. But ECS
// mapping sweeps reveal which client prefixes a service directs to it, and
// redirection is distance-driven — so the geometric median of its clients'
// (approximately known) locations is a good estimate of the server's
// location [13]. Accuracy is limited by the client-geolocation database,
// modeled here as "AS home city" (what a public IP-geo DB gets right).
#pragma once

#include <functional>
#include <span>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/geo.h"
#include "net/ipv4.h"

namespace itm::inference {

// Researcher-side geolocation of a client prefix (nullopt when unknown).
using PrefixLocator =
    std::function<std::optional<GeoPoint>(const Ipv4Prefix&)>;

struct GeolocatedServer {
  Ipv4Addr address;
  GeoPoint location;
  std::size_t supporting_prefixes = 0;
};

// Inverts one or more (prefix -> front end) ECS sweeps and geolocates every
// front end at the geometric median (Weiszfeld) of its clients. The span
// holds non-owning pointers so large sweeps need not be copied.
[[nodiscard]] std::vector<GeolocatedServer> geolocate_servers(
    std::span<const std::unordered_map<Ipv4Prefix, Ipv4Addr>* const> sweeps,
    const PrefixLocator& locate);

// Convenience overload for owned sweep vectors.
[[nodiscard]] std::vector<GeolocatedServer> geolocate_servers(
    const std::vector<std::unordered_map<Ipv4Prefix, Ipv4Addr>>& sweeps,
    const PrefixLocator& locate);

struct GeolocationScore {
  std::size_t located = 0;
  double median_error_km = 0.0;
  double frac_within_500km = 0.0;
};

// Scores inferred locations against ground truth server locations.
[[nodiscard]] GeolocationScore score_geolocation(
    const std::vector<GeolocatedServer>& inferred,
    const std::function<std::optional<GeoPoint>(Ipv4Addr)>& truth);

}  // namespace itm::inference
