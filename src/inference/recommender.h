// Peering-link recommendation (§3.3.3).
//
// The public topology misses most peering links. The paper proposes a
// recommender-system formulation: given PeeringDB-style public attributes
// (facility presence, peering policy, traffic profile/level) and the links
// that *are* observed, predict which co-located pairs also interconnect.
//
// The model is deliberately simple and fully "public-data". A naive idea —
// fitting a link-probability prior on *observed* links — fails badly here
// (and on the real Internet): visible links are exactly the ones that are
// not missing, a biased sample that anti-predicts invisible peering. The
// score instead combines
//   * an operational-knowledge prior over declared attributes (peering
//     policy compatibility, traffic-profile complementarity, declared size,
//     number of shared facilities — the attributes §3.3.3 lists), with a
//     flattening boost for content-heavy x eyeball pairs, and
//   * a collaborative term: cosine similarity of observed peer sets
//     ("networks with similar peering profiles peer with the same
//     networks"), which refines the ranking where visibility allows.
#pragma once

#include <vector>

#include "routing/public_view.h"
#include "topology/as_graph.h"
#include "topology/peeringdb.h"

namespace itm::inference {

struct LinkCandidate {
  Asn a{0};
  Asn b{0};
  double score = 0.0;
};

struct RecommenderConfig {
  // Weight of the collaborative (neighbor-similarity) term vs. the prior.
  double similarity_weight = 0.25;
  // Boost applied when a content-heavy network (declared traffic level >=
  // this) meets an eyeball: the hypergiant-flattening prior.
  int content_heavy_level = 5;
  double flattening_boost = 3.0;
};

class PeeringRecommender {
 public:
  PeeringRecommender(const topology::PeeringDb& pdb,
                     const topology::AsGraph& observed,
                     const RecommenderConfig& config = {});

  // Top-k candidate links among co-located, registered, not-yet-observed
  // pairs, highest score first.
  [[nodiscard]] std::vector<LinkCandidate> recommend(std::size_t top_k) const;

  // Score of one pair (0 when not co-located or unregistered).
  [[nodiscard]] double score(Asn a, Asn b) const;

 private:
  const topology::PeeringDb* pdb_;
  const topology::AsGraph* observed_;
  RecommenderConfig config_;
  // Observed peer sets for similarity.
  std::vector<std::vector<std::uint32_t>> peer_sets_;
};

struct RecommenderScore {
  std::size_t recommended = 0;
  std::size_t correct = 0;  // recommended links that exist in ground truth
  std::size_t missing_total = 0;  // true links absent from the observed view
  [[nodiscard]] double precision() const {
    return recommended == 0 ? 0.0
                            : static_cast<double>(correct) / recommended;
  }
  [[nodiscard]] double recall() const {
    return missing_total == 0 ? 0.0
                              : static_cast<double>(correct) / missing_total;
  }
};

// Precision/recall of the top-k recommendations against the true graph.
[[nodiscard]] RecommenderScore score_recommendations(
    const std::vector<LinkCandidate>& candidates,
    const topology::AsGraph& truth, const routing::PublicView& view);

// The observed graph plus accepted candidate links (added as peerings), for
// re-running path prediction on an augmented topology.
[[nodiscard]] topology::AsGraph augment_graph(
    const topology::AsGraph& observed,
    const std::vector<LinkCandidate>& candidates);

}  // namespace itm::inference
