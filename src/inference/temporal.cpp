#include "inference/temporal.h"

#include <cmath>
#include <numbers>

#include "net/ordered.h"
#include "net/stats.h"

namespace itm::inference {

TemporalActivity temporal_activity(const scan::CacheProber& prober) {
  TemporalActivity out;
  const auto& records = prober.sweep_records();
  out.sweep_times.reserve(records.size());
  for (const auto& record : records) out.sweep_times.push_back(record.at);
  for (std::size_t s = 0; s < records.size(); ++s) {
    for (const auto& [asn, counts] : net::sorted_items(records[s].by_as)) {
      auto& series = out.series[asn];
      if (series.empty()) series.assign(records.size(), 0.0);
      series[s] = counts.second > 0
                      ? static_cast<double>(counts.first) / counts.second
                      : 0.0;
    }
  }
  return out;
}

std::optional<double> estimated_peak_hour_utc(const TemporalActivity& activity,
                                              Asn asn) {
  const auto* series = activity.series_of(asn);
  if (series == nullptr) return std::nullopt;
  // Circular mean of sweep times weighted by (rate - min rate).
  double base = *std::min_element(series->begin(), series->end());
  double x = 0, y = 0;
  for (std::size_t s = 0; s < series->size(); ++s) {
    const double w = (*series)[s] - base;
    const double angle = 2.0 * std::numbers::pi *
                         static_cast<double>(activity.sweep_times[s] %
                                             kSecondsPerDay) /
                         kSecondsPerDay;
    x += w * std::cos(angle);
    y += w * std::sin(angle);
  }
  if (x == 0 && y == 0) return std::nullopt;
  double hour = std::atan2(y, x) * 24.0 / (2.0 * std::numbers::pi);
  if (hour < 0) hour += 24.0;
  return hour;
}

TemporalScore score_temporal(const TemporalActivity& activity,
                             const topology::Topology& topo,
                             double min_mean_rate) {
  TemporalScore score;
  double corr_sum = 0, err_sum = 0;
  for (const Asn asn : topo.accesses) {
    const auto* series = activity.series_of(asn);
    if (series == nullptr) continue;
    double mean = 0;
    // `series` points at a std::vector (the name matches TemporalActivity's
    // unordered member, but this is its ordered mapped value — the linter's
    // local-declaration override sees the vector-typed binding above).
    for (const double v : *series) mean += v;
    mean /= static_cast<double>(series->size());
    if (mean < min_mean_rate) continue;

    const double lon =
        topo.geography.city(topo.graph.info(asn).home_city).location.lon_deg;
    std::vector<double> truth;
    truth.reserve(series->size());
    for (const SimTime t : activity.sweep_times) {
      truth.push_back(diurnal_at(t, lon));
    }
    corr_sum += pearson(*series, truth);

    const auto peak = estimated_peak_hour_utc(activity, asn);
    if (peak) {
      double expected = std::fmod(21.0 - lon / 15.0 + 48.0, 24.0);
      double diff = std::abs(*peak - expected);
      diff = std::min(diff, 24.0 - diff);
      err_sum += diff;
    } else {
      err_sum += 12.0;  // no signal: worst case
    }
    ++score.ases_scored;
  }
  if (score.ases_scored > 0) {
    score.mean_shape_correlation =
        corr_sum / static_cast<double>(score.ases_scored);
    score.mean_peak_error_h = err_sum / static_cast<double>(score.ases_scored);
  }
  return score;
}

}  // namespace itm::inference
