// Temporal (hourly) activity estimation — Table 1's "desired: hourly"
// precision for the relative-activity component.
//
// Repeated cache-probing sweeps yield a per-AS hit-rate time series whose
// shape tracks the network's diurnal activity curve. This module turns
// sweep records into per-AS series and scores them against the ground-truth
// diurnal model (phase locked to the users' longitude).
#pragma once

#include <unordered_map>
#include <vector>

#include "net/sim_time.h"
#include "scan/cache_prober.h"
#include "topology/generator.h"

namespace itm::inference {

struct TemporalActivity {
  std::vector<SimTime> sweep_times;
  // asn -> hit-rate per sweep (aligned with sweep_times).
  std::unordered_map<std::uint32_t, std::vector<double>> series;

  [[nodiscard]] const std::vector<double>* series_of(Asn asn) const {
    const auto it = series.find(asn.value());
    return it == series.end() ? nullptr : &it->second;
  }
};

// Builds per-AS hit-rate series from a prober run with record_sweeps on.
[[nodiscard]] TemporalActivity temporal_activity(
    const scan::CacheProber& prober);

// Estimated peak time (hour of day, UTC) of an AS's series, by circular
// mean of sweep times weighted by hit rate. Returns nullopt when the series
// has no hits.
[[nodiscard]] std::optional<double> estimated_peak_hour_utc(
    const TemporalActivity& activity, Asn asn);

struct TemporalScore {
  // Mean Pearson correlation between per-AS series and the true diurnal
  // curve at the AS's longitude.
  double mean_shape_correlation = 0.0;
  // Mean circular error (hours) between estimated and true peak time.
  double mean_peak_error_h = 0.0;
  std::size_t ases_scored = 0;
};

// Scores the series against ground truth for ASes with enough signal.
[[nodiscard]] TemporalScore score_temporal(const TemporalActivity& activity,
                                           const topology::Topology& topo,
                                           double min_mean_rate = 1e-4);

}  // namespace itm::inference
