#include "inference/mapping_eval.h"

#include "net/geo.h"

namespace itm::inference {

MappingCoverage mapping_coverage(const cdn::ServiceCatalog& catalog,
                                 const traffic::TrafficMatrix& matrix) {
  MappingCoverage cov;
  double total = 0;
  for (const auto& s : catalog.services()) {
    const double bytes = matrix.service_bytes(s.id);
    total += bytes;
    switch (s.redirection) {
      case cdn::RedirectionKind::kDnsRedirection:
        (s.supports_ecs ? cov.ecs_dns_share : cov.non_ecs_dns_share) += bytes;
        break;
      case cdn::RedirectionKind::kAnycast:
        cov.anycast_share += bytes;
        break;
      case cdn::RedirectionKind::kCustomUrl:
        cov.custom_url_share += bytes;
        break;
      case cdn::RedirectionKind::kSingleSite:
        cov.single_site_share += bytes;
        break;
    }
  }
  if (total > 0) {
    cov.ecs_dns_share /= total;
    cov.non_ecs_dns_share /= total;
    cov.anycast_share /= total;
    cov.custom_url_share /= total;
    cov.single_site_share /= total;
  }
  return cov;
}

AnycastOptimality anycast_optimality(const topology::Topology& topo,
                                     const traffic::UserBase& users,
                                     const cdn::ClientMapper& mapper,
                                     HypergiantId hg) {
  AnycastOptimality result;
  const auto& geo = topo.geography;
  const auto& deployment = mapper.deployment();
  double total_users = 0, optimal_users = 0, near_users = 0;
  std::size_t optimal_routes = 0;
  for (const Asn asn : topo.accesses) {
    const double as_users = users.as_users(asn);
    const CityId client_city = topo.graph.info(asn).home_city;
    const PopId actual = mapper.anycast_site(hg, asn);
    const PopId optimal = mapper.optimal_site(hg, client_city);
    ++result.ases_considered;
    if (actual == optimal) ++optimal_routes;
    total_users += as_users;
    if (actual == optimal) optimal_users += as_users;
    const double excess_km =
        geo.distance_km(deployment.pop(actual).city, client_city) -
        geo.distance_km(deployment.pop(optimal).city, client_city);
    if (excess_km <= 500.0) near_users += as_users;
  }
  if (result.ases_considered > 0) {
    result.routes_optimal = static_cast<double>(optimal_routes) /
                            static_cast<double>(result.ases_considered);
  }
  if (total_users > 0) {
    result.users_optimal = optimal_users / total_users;
    result.users_within_500km = near_users / total_users;
  }
  return result;
}

}  // namespace itm::inference
