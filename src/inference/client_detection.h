// Turning raw measurements into the "where are users?" map component, and
// scoring it the way the paper does: by the fraction of a hypergiant's
// traffic whose client prefix/AS the technique identified (the §3.1.2
// "95% / 60% / 99% of Microsoft CDN traffic" metrics), plus false-positive
// and APNIC-user coverage rates.
#pragma once

#include <span>
#include <unordered_set>
#include <vector>

#include "apnic/estimator.h"
#include "net/ids.h"
#include "net/ipv4.h"
#include "traffic/demand.h"
#include "traffic/user_base.h"

namespace itm::inference {

struct ClientCoverage {
  // Fraction of the reference hypergiant's bytes originating in detected
  // client prefixes (or ASes, for AS-granularity techniques).
  double traffic_coverage = 0.0;
  // Fraction of all users in detected prefixes/ASes.
  double user_coverage = 0.0;
  // Fraction of detected prefixes with no actual activity (paper: <1%).
  double false_positive_rate = 0.0;
  std::size_t detected = 0;
  std::size_t true_universe = 0;
};

// Prefix-granularity evaluation (cache probing).
[[nodiscard]] ClientCoverage evaluate_prefixes(
    std::span<const Ipv4Prefix> detected, const traffic::UserBase& users,
    const traffic::TrafficMatrix& matrix, HypergiantId reference);

// AS-granularity evaluation (root-log crawling).
[[nodiscard]] ClientCoverage evaluate_ases(std::span<const Asn> detected,
                                           const traffic::UserBase& users,
                                           const traffic::TrafficMatrix& matrix,
                                           HypergiantId reference,
                                           const topology::Topology& topo);

// Union of an AS set with the ASes of a prefix set (the paper's combined
// 99% number is at AS granularity).
[[nodiscard]] std::vector<Asn> combine_detected(
    std::span<const Ipv4Prefix> prefixes, std::span<const Asn> ases,
    const topology::AddressPlan& plan);

// Fraction of APNIC-estimated users that sit in detected ASes, per country
// (the Figure 1b shading).
[[nodiscard]] std::vector<double> apnic_coverage_by_country(
    std::span<const Asn> detected, const apnic::ApnicEstimates& apnic,
    const topology::Topology& topo);

}  // namespace itm::inference
