// ECS cache probing of the public resolver (§3.1.2, approach 1).
//
// The prober iterates routable /24s and, for each, issues non-recursive
// ECS-scoped queries for a handful of popular ECS-supporting domains against
// each public-resolver PoP. A hit means a client in that prefix resolved the
// domain at that PoP within the record's TTL — evidence of client activity.
// Hit counts accumulated over repeated sweeps provide the relative-activity
// signal explored in Figure 2.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "net/executor.h"
#include "net/rng.h"

#include "cdn/services.h"
#include "topology/address_plan.h"
#include "dns/system.h"

namespace itm::scan {

struct CacheProbeConfig {
  // Number of most-popular ECS-supporting DNS-redirection services probed.
  std::size_t probe_services = 10;
  // Stop probing a (prefix, PoP) after the first hit in a sweep (cheaper,
  // detection-only mode; disable to measure hit *rates*).
  bool stop_after_first_hit = false;
  // Record a per-sweep, per-AS hit-rate time series (enables hourly
  // activity estimation; requires an AddressPlan at construction).
  bool record_sweeps = false;
  // Fraction of probes lost in flight (rate limiting, packet loss). Lost
  // probes count toward `probes` (the measurer paid for them) but can
  // never hit — real sweeps against public resolvers see some loss.
  double probe_loss = 0.0;
  // Seed for the deterministic loss process. Each (sweep, prefix) pair
  // derives its own stream via Rng::split, so loss outcomes are independent
  // of sharding, thread count and probe order.
  std::uint64_t loss_seed = 0x10c;
};

class CacheProber {
 public:
  // `executor` shards sweeps over prefixes; defaults to the serial path.
  // Sweep results are identical for every thread count: probing only reads
  // DNS state, per-prefix loss streams are split from the master seed, and
  // per-shard results merge back in prefix order.
  CacheProber(const dns::DnsSystem& dns, const cdn::ServiceCatalog& catalog,
              const CacheProbeConfig& config = {},
              const topology::AddressPlan* plan = nullptr,
              net::Executor* executor = nullptr);

  // One sweep over `prefixes` at simulated time `now`, across all PoPs.
  void sweep(std::span<const Ipv4Prefix> prefixes, SimTime now);

  struct PrefixStats {
    std::uint32_t hits = 0;
    std::uint32_t probes = 0;
    // Bitmask of PoPs where this prefix was ever seen (PoP count <= 64).
    std::uint64_t pops_seen = 0;
  };

  [[nodiscard]] const std::unordered_map<Ipv4Prefix, PrefixStats>& results()
      const {
    return results_;
  }

  // Prefixes with at least one hit.
  [[nodiscard]] std::vector<Ipv4Prefix> detected_prefixes() const;

  // Distinct detected prefixes per public PoP (Figure 1a's series).
  [[nodiscard]] std::vector<std::size_t> prefixes_per_pop() const;

  // Hit rate (hits / probes) aggregated per AS, using an origin lookup.
  [[nodiscard]] std::unordered_map<std::uint32_t, double> hit_rate_by_as(
      const topology::AddressPlan& plan) const;

  [[nodiscard]] std::uint64_t total_probes() const { return total_probes_; }

  // Per-sweep, per-AS hit counts (only populated when record_sweeps is on).
  struct SweepRecord {
    SimTime at = 0;
    // asn -> (hits, probes) within this sweep.
    std::unordered_map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>>
        by_as;
  };
  [[nodiscard]] const std::vector<SweepRecord>& sweep_records() const {
    return sweep_records_;
  }

  // The services this prober actually probes (popular + ECS + DNS-redirected).
  [[nodiscard]] std::span<const ServiceId> probed_services() const {
    return probe_list_;
  }

 private:
  // Read-only probing outcome for one prefix within one sweep; computed on
  // worker threads, merged into results_ in prefix order on the caller.
  struct PrefixOutcome {
    std::uint32_t hits = 0;
    std::uint32_t probes = 0;
    std::uint64_t pops_seen = 0;
  };

  [[nodiscard]] PrefixOutcome probe_prefix(const Ipv4Prefix& prefix,
                                           SimTime now,
                                           std::uint64_t sweep_index) const;

  const dns::DnsSystem* dns_;
  const cdn::ServiceCatalog* catalog_;
  CacheProbeConfig config_;
  const topology::AddressPlan* plan_;
  net::Executor* executor_;
  std::vector<ServiceId> probe_list_;
  std::unordered_map<Ipv4Prefix, PrefixStats> results_;
  std::vector<SweepRecord> sweep_records_;
  std::uint64_t total_probes_ = 0;
  // Root of the per-(sweep, prefix) loss streams (see CacheProbeConfig).
  Rng loss_root_;
  std::uint64_t sweep_index_ = 0;
};

}  // namespace itm::scan
