#include "scan/ipid.h"

#include <cmath>
#include <numbers>

namespace itm::scan {

std::uint16_t RouterModel::id_at(SimTime t) const {
  // integral of base + traffic*(1 + depth*cos(omega*tau + phi0)) over [0,t].
  constexpr double kOmega = 2.0 * std::numbers::pi / 86400.0;
  const double phi0 =
      2.0 * std::numbers::pi * (lon_deg / 15.0 - 21.0) / 24.0;
  const double td = static_cast<double>(t);
  const double integral =
      base_ips * td + traffic_ips * td +
      traffic_ips * diurnal_depth / kOmega *
          (std::sin(kOmega * td + phi0) - std::sin(phi0));
  const auto total = static_cast<std::uint64_t>(std::llround(integral));
  return static_cast<std::uint16_t>((initial + total) & 0xffff);
}

RouterFleet RouterFleet::build(const topology::Topology& topo,
                               const traffic::TrafficMatrix& matrix,
                               const RouterFleetConfig& config, Rng& rng) {
  RouterFleet fleet;
  const auto& graph = topo.graph;
  fleet.forwarded_bytes_.assign(graph.size(), 0.0);
  const auto link_bytes = matrix.link_bytes();
  for (std::size_t li = 0; li < graph.links().size(); ++li) {
    const auto& link = graph.links()[li];
    fleet.forwarded_bytes_[link.a.value()] += link_bytes[li];
    fleet.forwarded_bytes_[link.b.value()] += link_bytes[li];
  }
  double max_fwd = 0;
  for (const double b : fleet.forwarded_bytes_) max_fwd = std::max(max_fwd, b);

  fleet.routers_.reserve(graph.size());
  for (const auto& as : graph.ases()) {
    RouterModel r;
    r.asn = as.asn;
    r.interface = topo.addresses.of(as.asn).infra_slash24.address_at(1);
    r.lon_deg = topo.geography.city(as.home_city).location.lon_deg;
    r.base_ips = rng.uniform(0.5, 5.0);
    const double fwd = fleet.forwarded_bytes_[as.asn.value()];
    r.traffic_ips =
        max_fwd <= 0
            ? config.min_traffic_ips
            : config.min_traffic_ips +
                  (config.max_traffic_ips - config.min_traffic_ips) *
                      (fwd / max_fwd);
    r.diurnal_depth = rng.uniform(0.6, 0.85);
    r.initial = static_cast<std::uint16_t>(rng.next_below(65536));
    fleet.by_interface_.emplace(r.interface, fleet.routers_.size());
    fleet.routers_.push_back(r);
  }
  return fleet;
}

const RouterModel* RouterFleet::at(Ipv4Addr interface) const {
  const auto it = by_interface_.find(interface);
  return it == by_interface_.end() ? nullptr : &routers_[it->second];
}

std::optional<std::uint16_t> IpIdProber::ping(Ipv4Addr interface,
                                              SimTime t) const {
  const RouterModel* router = fleet_->at(interface);
  if (router == nullptr) return std::nullopt;
  return router->id_at(t);
}

std::optional<double> IpIdProber::estimate_velocity(Ipv4Addr interface,
                                                    SimTime start, SimTime end,
                                                    SimTime interval) const {
  if (end <= start || interval == 0) return std::nullopt;
  const RouterModel* router = fleet_->at(interface);
  if (router == nullptr) return std::nullopt;
  std::uint64_t increments = 0;
  std::uint16_t prev = router->id_at(start);
  SimTime t = start + interval;
  SimTime last = start;
  for (; t <= end; t += interval) {
    const std::uint16_t cur = router->id_at(t);
    increments += static_cast<std::uint16_t>(cur - prev);  // 16-bit unwrap
    prev = cur;
    last = t;
  }
  if (last == start) return std::nullopt;
  return static_cast<double>(increments) / static_cast<double>(last - start);
}

std::vector<double> IpIdProber::velocity_profile(Ipv4Addr interface,
                                                 SimTime start,
                                                 std::size_t hours,
                                                 SimTime interval) const {
  std::vector<double> out;
  out.reserve(hours);
  for (std::size_t h = 0; h < hours; ++h) {
    const SimTime s = start + h * kSecondsPerHour;
    out.push_back(
        estimate_velocity(interface, s, s + kSecondsPerHour, interval)
            .value_or(0.0));
  }
  return out;
}

}  // namespace itm::scan
