// Traceroute over the simulated data plane.
//
// Hops are the border-router interfaces of the ASes on the BGP best path
// (one responding interface per AS, as a Level3-style aliased view). Used by
// examples and by facility/route diagnostics; AS-path measurement tools use
// routing::Bgp directly.
#pragma once

#include <vector>

#include "routing/bgp.h"
#include "scan/ipid.h"
#include "topology/generator.h"

namespace itm::scan {

struct TracerouteHop {
  Asn asn{0};
  Ipv4Addr interface;
  double rtt_ms = 0.0;
};

class Traceroute {
 public:
  Traceroute(const topology::Topology& topo, const RouterFleet& fleet)
      : topo_(&topo), fleet_(&fleet), bgp_(topo.graph) {}

  // Hop list from `src_as` toward `dst`; empty when unreachable.
  [[nodiscard]] std::vector<TracerouteHop> trace(Asn src_as,
                                                 Ipv4Addr dst) const;

 private:
  const topology::Topology* topo_;
  const RouterFleet* fleet_;
  routing::Bgp bgp_;
};

}  // namespace itm::scan
