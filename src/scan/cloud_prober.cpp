#include "scan/cloud_prober.h"

#include "routing/bgp.h"

namespace itm::scan {

routing::PublicView probe_from_cloud(const topology::Topology& topo,
                                     Asn cloud_as) {
  const routing::Bgp bgp(topo.graph);
  std::vector<Asn> destinations;
  destinations.reserve(topo.graph.size());
  for (const auto& as : topo.graph.ases()) destinations.push_back(as.asn);
  const Asn feeders[] = {cloud_as};
  return routing::collect_public_view(bgp, feeders, destinations);
}

}  // namespace itm::scan
