// Crawling root DNS logs for Chromium probe queries (§3.1.2, approach 2).
//
// Root logs record the *recursive resolver's* address. Attributing a
// resolver to its origin AS is public information (BGP). Queries arriving
// via the public resolver are attributed to its operator's AS — the
// technique's inherent blind spot, which caps its coverage well below cache
// probing's (the paper's 60% vs 95%).
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "dns/system.h"
#include "topology/address_plan.h"

namespace itm::scan {

struct RootCrawlResult {
  // Chromium-probe query count per resolver-hosting AS.
  std::unordered_map<std::uint32_t, std::uint64_t> queries_by_as;
  std::uint64_t total_attributed = 0;
  std::uint64_t total_crawled = 0;

  [[nodiscard]] std::vector<Asn> detected_ases() const {
    std::vector<Asn> out;
    out.reserve(queries_by_as.size());
    for (const auto& [asn, count] : queries_by_as) {
      if (count > 0) out.push_back(Asn(asn));
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

// Crawls the open root letters and aggregates per-AS activity.
[[nodiscard]] RootCrawlResult crawl_root_logs(
    const dns::DnsSystem& dns, const topology::AddressPlan& plan);

}  // namespace itm::scan
