#include "scan/traceroute.h"

#include "net/geo.h"

namespace itm::scan {

std::vector<TracerouteHop> Traceroute::trace(Asn src_as, Ipv4Addr dst) const {
  std::vector<TracerouteHop> hops;
  const auto dst_as = topo_->addresses.origin_of(dst);
  if (!dst_as) return hops;
  const auto table = bgp_.routes_to(*dst_as);
  if (!table.at(src_as).reachable()) return hops;
  const auto path = table.path_from(src_as);
  const auto& geo = topo_->geography;
  const GeoPoint origin =
      geo.city(topo_->graph.info(src_as).home_city).location;
  double rtt = 0.2;  // first-hop latency floor
  for (const Asn asn : path) {
    const auto& router = fleet_->of(asn);
    const GeoPoint at =
        geo.city(topo_->graph.info(asn).home_city).location;
    rtt = std::max(rtt, min_rtt_ms(origin, at) + 0.2);
    hops.push_back(TracerouteHop{asn, router.interface, rtt});
  }
  return hops;
}

}  // namespace itm::scan
