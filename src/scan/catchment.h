// Verfploeter-style anycast catchment measurement (§3.2.3, [21]).
//
// With code running at each anycast site (edge-compute platforms make this
// possible even for third parties, per the paper), one can probe out to
// every network from the anycast prefix; each reply returns to the site
// that catches that network, yielding the exact catchment map — replacing
// the "clients reach their closest site" assumption.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "cdn/mapping.h"

namespace itm::scan {

struct CatchmentMap {
  HypergiantId hypergiant;
  // client AS -> PoP that catches it.
  std::unordered_map<std::uint32_t, PopId> catchment;

  [[nodiscard]] std::optional<PopId> site_of(Asn client) const {
    const auto it = catchment.find(client.value());
    return it == catchment.end() ? std::nullopt
                                 : std::optional<PopId>(it->second);
  }
};

// Probes every client AS from the hypergiant's anycast prefix and records
// which site the reply reaches. Requires edge-compute access at the
// operator (true for clouds/CDNs with worker platforms).
[[nodiscard]] CatchmentMap measure_catchments(
    const cdn::ClientMapper& mapper, HypergiantId hypergiant,
    std::span<const Asn> client_ases);

}  // namespace itm::scan
