#include "scan/ecs_mapper.h"

namespace itm::scan {

std::unordered_map<Ipv4Prefix, Ipv4Addr> EcsMapper::sweep(
    const cdn::Service& service, std::span<const Ipv4Prefix> prefixes,
    net::Executor& executor) const {
  // Each ECS query is an independent read of the authoritative server;
  // answers land in per-index slots, then insert in prefix order.
  const auto answers = executor.parallel_map<Ipv4Addr>(
      prefixes.size(), [this, &service, prefixes](std::size_t i) {
        return authoritative_->answer(service, prefixes[i], vantage_city_)
            .address;
      });
  std::unordered_map<Ipv4Prefix, Ipv4Addr> out;
  out.reserve(prefixes.size());
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    out.emplace(prefixes[i], answers[i]);
  }
  return out;
}

}  // namespace itm::scan
