#include "scan/ecs_mapper.h"

namespace itm::scan {

std::unordered_map<Ipv4Prefix, Ipv4Addr> EcsMapper::sweep(
    const cdn::Service& service,
    std::span<const Ipv4Prefix> prefixes) const {
  std::unordered_map<Ipv4Prefix, Ipv4Addr> out;
  out.reserve(prefixes.size());
  for (const Ipv4Prefix& prefix : prefixes) {
    const auto answer =
        authoritative_->answer(service, prefix, vantage_city_);
    out.emplace(prefix, answer.address);
  }
  return out;
}

}  // namespace itm::scan
