#include "scan/ecs_mapper.h"

#include "dns/cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace itm::scan {

namespace {

// ECS scope-length buckets: 0 (global/no scope) up to the /32 maximum.
constexpr std::uint64_t kScopeLengthBounds[] = {0, 8, 16, 24, 32};

}  // namespace

std::unordered_map<Ipv4Prefix, Ipv4Addr> EcsMapper::sweep(
    const cdn::Service& service, std::span<const Ipv4Prefix> prefixes,
    net::Executor& executor) const {
  ITM_SPAN("scan.ecs.sweep");
  // Each ECS query is an independent read of the authoritative server;
  // answers land in per-index slots, then insert in prefix order.
  const auto answers = executor.parallel_map<dns::AuthoritativeAnswer>(
      prefixes.size(), [this, &service, prefixes](std::size_t i) {
        return authoritative_->answer(service, prefixes[i], vantage_city_);
      });
  std::unordered_map<Ipv4Prefix, Ipv4Addr> out;
  out.reserve(prefixes.size());
  obs::Histogram& scope_lengths = obs::metrics().histogram(
      "scan.ecs.scope_length", kScopeLengthBounds);
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    out.emplace(prefixes[i], answers[i].address);
    // The authoritative echoes either a /24 scope (ECS honored) or the
    // global scope (query answered by resolver location alone).
    scope_lengths.observe(
        answers[i].cache_scope == dns::DnsCache::kGlobalScope ? 0 : 24);
  }
  obs::count("scan.ecs.queries", prefixes.size());
  obs::count("scan.ecs.sweeps");
  return out;
}

}  // namespace itm::scan
