// IP ID side-channel measurement of router forwarding rates (§3.1.3).
//
// Many routers source the IP ID field of locally-generated packets from a
// single incrementing counter; routers that export flow statistics generate
// such packets roughly in proportion to forwarded traffic. Each simulated
// border router therefore advances its 16-bit counter at
//   rate(t) = base + traffic_scale * diurnal(t, local longitude)
// (closed form, so the counter can be sampled at arbitrary times). The
// prober pings an interface repeatedly, unwraps the 16-bit deltas, and
// estimates the counter velocity — the paper's proposed proxy for relative
// forwarded volume.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ids.h"
#include "net/ipv4.h"
#include "net/sim_time.h"
#include "topology/generator.h"
#include "traffic/demand.h"

namespace itm::scan {

struct RouterModel {
  Asn asn{0};
  Ipv4Addr interface;
  double lon_deg = 0.0;
  // Counter increments per second: idle floor plus traffic-driven part.
  double base_ips = 2.0;
  double traffic_ips = 0.0;  // average over a day; modulated diurnally
  double diurnal_depth = 0.75;
  std::uint16_t initial = 0;

  // Counter value at time t (exact integral of the rate, mod 2^16).
  [[nodiscard]] std::uint16_t id_at(SimTime t) const;

  // Average total increments/second over a full day.
  [[nodiscard]] double mean_rate() const { return base_ips + traffic_ips; }
};

struct RouterFleetConfig {
  // Velocity assigned to the busiest router (increments/second). At the
  // diurnal peak the rate is ~1.85x this; it must stay below 65536/interval
  // (~1090/s for 60-second probing) or the 16-bit unwrap aliases.
  double max_traffic_ips = 500.0;
  double min_traffic_ips = 1.0;
};

// One border router per AS, with traffic-proportional counter velocity
// derived from the ground-truth matrix (sum of bytes on incident links).
class RouterFleet {
 public:
  static RouterFleet build(const topology::Topology& topo,
                           const traffic::TrafficMatrix& matrix,
                           const RouterFleetConfig& config, Rng& rng);

  [[nodiscard]] std::span<const RouterModel> routers() const {
    return routers_;
  }
  [[nodiscard]] const RouterModel* at(Ipv4Addr interface) const;
  [[nodiscard]] const RouterModel& of(Asn asn) const {
    return routers_[asn.value()];
  }

  // Ground-truth forwarded bytes/day used to set the router's velocity.
  [[nodiscard]] double forwarded_bytes(Asn asn) const {
    return forwarded_bytes_[asn.value()];
  }

 private:
  std::vector<RouterModel> routers_;
  std::vector<double> forwarded_bytes_;
  std::unordered_map<Ipv4Addr, std::size_t> by_interface_;
};

struct VelocitySample {
  SimTime at;
  std::uint16_t id;
};

class IpIdProber {
 public:
  explicit IpIdProber(const RouterFleet& fleet) : fleet_(&fleet) {}

  // Single ping; nullopt if no router answers at the address.
  [[nodiscard]] std::optional<std::uint16_t> ping(Ipv4Addr interface,
                                                  SimTime t) const;

  // Samples [start, end] every `interval` and returns the estimated
  // velocity in increments/second (16-bit unwrap between samples).
  [[nodiscard]] std::optional<double> estimate_velocity(
      Ipv4Addr interface, SimTime start, SimTime end, SimTime interval) const;

  // Hourly velocity profile over `hours` hours from `start` (each hour
  // estimated from `interval`-spaced pings).
  [[nodiscard]] std::vector<double> velocity_profile(
      Ipv4Addr interface, SimTime start, std::size_t hours,
      SimTime interval = 30) const;

 private:
  const RouterFleet* fleet_;
};

}  // namespace itm::scan
