// ECS probing of authoritative servers to emulate global vantage points
// ([13, 56]; §3.2.1): a query carrying an arbitrary client prefix in the
// EDNS0 Client Subnet option returns the front end that service would hand
// to clients of that prefix. Sweeping all routable prefixes yields the full
// client-to-server mapping for ECS-supporting services.
#pragma once

#include <span>
#include <unordered_map>

#include "cdn/services.h"
#include "dns/authoritative.h"
#include "net/executor.h"

namespace itm::scan {

class EcsMapper {
 public:
  EcsMapper(const dns::AuthoritativeDns& authoritative, CityId vantage_city)
      : authoritative_(&authoritative), vantage_city_(vantage_city) {}

  // Front end returned for each prefix. Only ECS-supporting DNS-redirection
  // services expose per-prefix mappings; for others every prefix maps to
  // the same answer (the VIP / the answer for the vantage location).
  // Queries are independent and shard over `executor`; answers are inserted
  // in prefix order, so the result (including its hash-map layout) is
  // identical for every thread count.
  [[nodiscard]] std::unordered_map<Ipv4Prefix, Ipv4Addr> sweep(
      const cdn::Service& service, std::span<const Ipv4Prefix> prefixes,
      net::Executor& executor = net::Executor::serial()) const;

 private:
  const dns::AuthoritativeDns* authoritative_;
  CityId vantage_city_;
};

}  // namespace itm::scan
