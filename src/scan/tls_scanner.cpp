#include "scan/tls_scanner.h"

#include <algorithm>

#include "net/ordered.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace itm::scan {

std::vector<const DiscoveredEndpoint*> TlsScanResult::operated_by(
    std::string_view operator_name) const {
  std::vector<const DiscoveredEndpoint*> out;
  for (const auto& ep : endpoints) {
    if (ep.inferred_operator == operator_name) out.push_back(&ep);
  }
  return out;
}

TlsScanResult TlsScanner::sweep(std::span<const std::string> operator_names,
                                net::Executor& executor) const {
  ITM_SPAN("scan.tls.sweep");
  TlsScanResult result;
  // Scanning every address of every routable /24 is the simulation analogue
  // of a full IPv4 TLS sweep. Listening endpoints are sparse, so we walk the
  // inventory keyed by address but still count probed addresses honestly.
  result.addresses_probed = plan_->total_slash24_count() * 256;

  // Snapshot the inventory in address order so shard boundaries (and the
  // final endpoint order) are independent of hash-map layout and threads.
  std::vector<const cdn::TlsEndpoint*> listening;
  listening.reserve(inventory_->size());
  for (const auto& [address, ep] : inventory_->all()) {
    listening.push_back(&ep);
  }
  std::sort(listening.begin(), listening.end(),
            [](const cdn::TlsEndpoint* a, const cdn::TlsEndpoint* b) {
              return a->address < b->address;
            });

  // Classify each listening address independently (address-space shards).
  result.endpoints = executor.parallel_map<DiscoveredEndpoint>(
      listening.size(), [this, &listening, operator_names](std::size_t i) {
        const cdn::TlsEndpoint& ep = *listening[i];
        DiscoveredEndpoint found;
        found.address = ep.address;
        found.cert_names = ep.default_cert_names;
        if (const auto asn = plan_->origin_of(ep.address)) {
          found.origin_as = *asn;
        }
        // Match certificate subjects against known operator patterns.
        for (const auto& op : operator_names) {
          const bool match = std::any_of(
              found.cert_names.begin(), found.cert_names.end(),
              [&op](const std::string& name) {
                return name.find(op) != std::string::npos;
              });
          if (match) {
            found.inferred_operator = op;
            break;
          }
        }
        return found;
      });

  // Off-net inference: the certificate names one operator while BGP says
  // the address belongs to a different network. The operator's own AS is
  // taken as the majority origin among its matched endpoints (in practice
  // hypergiant ASNs are public knowledge); ties break to the lowest ASN so
  // the choice never depends on hash-map iteration order.
  std::unordered_map<std::string, std::unordered_map<std::uint32_t, int>>
      operator_origins;
  for (const auto& ep : result.endpoints) {
    if (!ep.inferred_operator.empty()) {
      ++operator_origins[ep.inferred_operator][ep.origin_as.value()];
    }
  }
  std::unordered_map<std::string, std::uint32_t> operator_home;
  for (const auto& [op, origins] : net::sorted_items(operator_origins)) {
    std::uint32_t best_asn = 0;
    int best = -1;
    for (const auto& [asn, count] : net::sorted_items(origins)) {
      if (count > best || (count == best && asn < best_asn)) {
        best = count;
        best_asn = asn;
      }
    }
    operator_home[op] = best_asn;
  }
  std::uint64_t matched = 0;
  std::uint64_t offnet = 0;
  for (auto& ep : result.endpoints) {
    if (!ep.inferred_operator.empty()) {
      ++matched;
      ep.inferred_offnet =
          ep.origin_as.value() != operator_home[ep.inferred_operator];
      if (ep.inferred_offnet) ++offnet;
    }
  }
  obs::count("scan.tls.handshakes_attempted", result.addresses_probed);
  obs::count("scan.tls.endpoints_listening", result.endpoints.size());
  obs::count("scan.tls.certs_matched", matched);
  obs::count("scan.tls.offnets_inferred", offnet);
  return result;
}

std::vector<Ipv4Addr> TlsScanner::sni_scan(
    std::string_view hostname, std::span<const Ipv4Addr> addresses) const {
  std::vector<Ipv4Addr> out;
  for (const Ipv4Addr addr : addresses) {
    if (inventory_->serves(addr, hostname)) out.push_back(addr);
  }
  return out;
}

}  // namespace itm::scan
