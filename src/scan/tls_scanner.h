// Internet-wide TLS and SNI scanning (§3.2.2, approaches 1-2).
//
// The TLS sweep walks every routable address, records which ones answer TLS
// and with which certificate names, and classifies CDN infrastructure by
// matching certificate subjects to hypergiant patterns — finding off-net
// caches because they present the operator's certificates from inside other
// networks. The SNI scan checks which discovered CDN addresses complete a
// handshake for a given service hostname, uncovering the service's hosting
// footprint.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cdn/tls.h"
#include "net/executor.h"
#include "topology/address_plan.h"

namespace itm::scan {

struct DiscoveredEndpoint {
  Ipv4Addr address;
  std::vector<std::string> cert_names;
  // Origin AS from public BGP data.
  Asn origin_as{0};
  // Operator inferred from certificate subjects (empty if unmatched).
  std::string inferred_operator;
  // True when the inferred operator's home AS differs from the origin AS.
  bool inferred_offnet = false;
};

struct TlsScanResult {
  std::vector<DiscoveredEndpoint> endpoints;
  std::uint64_t addresses_probed = 0;

  [[nodiscard]] std::vector<const DiscoveredEndpoint*> operated_by(
      std::string_view operator_name) const;
};

class TlsScanner {
 public:
  TlsScanner(const cdn::TlsInventory& inventory,
             const topology::AddressPlan& plan)
      : inventory_(&inventory), plan_(&plan) {}

  // Sweeps all addresses in every routable /24. `operator_names` are the
  // known hypergiant certificate patterns to classify against (as in [25],
  // operator cert patterns are curated by hand). Classification is sharded
  // over the address space when an executor is given; endpoints are merged
  // in address order, so the result is byte-identical for every thread
  // count (Executor::serial() is the legacy single-threaded path).
  [[nodiscard]] TlsScanResult sweep(
      std::span<const std::string> operator_names,
      net::Executor& executor = net::Executor::serial()) const;

  // SNI scan: which of `addresses` serve `hostname`?
  [[nodiscard]] std::vector<Ipv4Addr> sni_scan(
      std::string_view hostname, std::span<const Ipv4Addr> addresses) const;

 private:
  const cdn::TlsInventory* inventory_;
  const topology::AddressPlan* plan_;
};

}  // namespace itm::scan
