#include "scan/root_crawler.h"

#include "net/ordered.h"

namespace itm::scan {

RootCrawlResult crawl_root_logs(const dns::DnsSystem& dns,
                                const topology::AddressPlan& plan) {
  RootCrawlResult result;
  for (const auto& [resolver, count] : net::sorted_items(dns.roots().crawl())) {
    result.total_crawled += count;
    const auto asn = plan.origin_of(resolver);
    if (!asn) continue;
    result.queries_by_as[asn->value()] += count;
    result.total_attributed += count;
  }
  return result;
}

}  // namespace itm::scan
