#include "scan/catchment.h"

namespace itm::scan {

CatchmentMap measure_catchments(const cdn::ClientMapper& mapper,
                                HypergiantId hypergiant,
                                std::span<const Asn> client_ases) {
  CatchmentMap map;
  map.hypergiant = hypergiant;
  map.catchment.reserve(client_ases.size());
  for (const Asn client : client_ases) {
    // The probe's reply follows the client's BGP route back into the
    // anycast prefix, landing at the catching site.
    map.catchment.emplace(client.value(),
                          mapper.anycast_site(hypergiant, client));
  }
  return map;
}

}  // namespace itm::scan
