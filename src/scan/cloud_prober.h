// Measuring out from cloud vantage points (§3.3.2, [7]).
//
// Researchers can rent VMs inside cloud hypergiants and traceroute outward;
// the forward paths reveal the cloud's peering links, which never appear in
// route-collector feeds (peer-learned routes are not exported to
// providers). The technique requires the operator to sell VMs — clouds do,
// pure CDNs do not — which is exactly the limitation §3.3.3 opens with.
#pragma once

#include <span>

#include "routing/public_view.h"
#include "topology/generator.h"

namespace itm::scan {

// Links observed on forward paths from `cloud_as` to every destination —
// equivalent to the cloud AS feeding a collector with its full table.
[[nodiscard]] routing::PublicView probe_from_cloud(
    const topology::Topology& topo, Asn cloud_as);

}  // namespace itm::scan
