#include "scan/cache_prober.h"

#include <algorithm>
#include <cassert>

#include "net/ordered.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace itm::scan {

CacheProber::CacheProber(const dns::DnsSystem& dns,
                         const cdn::ServiceCatalog& catalog,
                         const CacheProbeConfig& config,
                         const topology::AddressPlan* plan,
                         net::Executor* executor)
    : dns_(&dns),
      catalog_(&catalog),
      config_(config),
      plan_(plan),
      executor_(executor),
      loss_root_(config.loss_seed) {
  assert(!config.record_sweeps || plan != nullptr);
  // A measurer would pick popular domains known to support ECS; popularity
  // rank is public knowledge (top lists).
  for (const ServiceId id : catalog.by_popularity()) {
    const auto& s = catalog.service(id);
    if (s.redirection == cdn::RedirectionKind::kDnsRedirection &&
        s.supports_ecs) {
      probe_list_.push_back(id);
      if (probe_list_.size() >= config.probe_services) break;
    }
  }
}

CacheProber::PrefixOutcome CacheProber::probe_prefix(
    const Ipv4Prefix& prefix, SimTime now, std::uint64_t sweep_index) const {
  // Loss stream derived from (sweep, prefix): a pure function of the master
  // seed, never shared between prefixes, so outcomes are independent of
  // which shard (or thread) probes this prefix.
  Rng loss = loss_root_.split((sweep_index << 32) ^ prefix.base().bits());
  const std::size_t pops = dns_->public_pops().size();
  PrefixOutcome out;
  for (std::size_t pop = 0; pop < pops; ++pop) {
    bool pop_hit = false;
    for (const ServiceId sid : probe_list_) {
      ++out.probes;
      if (config_.probe_loss > 0 && loss.bernoulli(config_.probe_loss)) {
        continue;  // probe or response lost in flight
      }
      if (dns_->probe_cache(pop, catalog_->service(sid), prefix, now)) {
        ++out.hits;
        pop_hit = true;
        if (config_.stop_after_first_hit) break;
      }
    }
    if (pop_hit && pop < 64) out.pops_seen |= std::uint64_t{1} << pop;
  }
  return out;
}

void CacheProber::sweep(std::span<const Ipv4Prefix> prefixes, SimTime now) {
  ITM_SPAN_AT("scan.cache_probe.sweep", now);
  const std::uint64_t sweep_index = sweep_index_++;
  SweepRecord* record = nullptr;
  if (config_.record_sweeps) {
    sweep_records_.emplace_back();
    record = &sweep_records_.back();
    record->at = now;
  }
  // Probing only reads DNS cache state; shard it over prefixes. Outcomes
  // land in per-index slots and are merged below in prefix order, replaying
  // the exact mutation sequence of the serial path.
  net::Executor& executor = executor_ != nullptr ? *executor_
                                                 : net::Executor::serial();
  const auto outcomes = executor.parallel_map<PrefixOutcome>(
      prefixes.size(), [this, prefixes, now, sweep_index](std::size_t i) {
        return probe_prefix(prefixes[i], now, sweep_index);
      });
  std::uint64_t sweep_probes = 0;
  std::uint64_t sweep_hits = 0;
  std::uint64_t discovered = 0;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    const Ipv4Prefix& prefix = prefixes[i];
    const PrefixOutcome& outcome = outcomes[i];
    PrefixStats& stats = results_[prefix];
    if (stats.hits == 0 && outcome.hits > 0) ++discovered;
    stats.hits += outcome.hits;
    stats.probes += outcome.probes;
    stats.pops_seen |= outcome.pops_seen;
    total_probes_ += outcome.probes;
    sweep_probes += outcome.probes;
    sweep_hits += outcome.hits;
    if (record != nullptr) {
      if (const auto asn = plan_->origin_of(prefix)) {
        auto& [hits, probes] = record->by_as[asn->value()];
        hits += outcome.hits;
        probes += outcome.probes;
      }
    }
  }
  // Batched per sweep: probes *sent* (lost ones included — the measurer
  // paid for them), hits observed, and prefixes newly seen for the first
  // time. All pure event counts, identical for every thread count.
  obs::count("scan.cache_probe.sweeps");
  obs::count("scan.cache_probe.probes_sent", sweep_probes);
  obs::count("scan.cache_probe.hits", sweep_hits);
  obs::count("scan.cache_probe.prefixes_discovered", discovered);
}

std::vector<Ipv4Prefix> CacheProber::detected_prefixes() const {
  std::vector<Ipv4Prefix> out;
  for (const auto& [prefix, stats] : results_) {
    if (stats.hits > 0) out.push_back(prefix);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> CacheProber::prefixes_per_pop() const {
  std::vector<std::size_t> counts(dns_->public_pops().size(), 0);
  for (const auto& [prefix, stats] : net::sorted_items(results_)) {
    for (std::size_t pop = 0; pop < counts.size() && pop < 64; ++pop) {
      if (stats.pops_seen & (std::uint64_t{1} << pop)) ++counts[pop];
    }
  }
  return counts;
}

std::unordered_map<std::uint32_t, double> CacheProber::hit_rate_by_as(
    const topology::AddressPlan& plan) const {
  // Prefix-sorted accumulation: many prefixes fold into one AS, so the
  // float += order would otherwise follow hash layout (itm-lint:
  // nondet-iteration).
  std::unordered_map<std::uint32_t, double> hits, probes;
  for (const auto& [prefix, stats] : net::sorted_items(results_)) {
    const auto asn = plan.origin_of(prefix);
    if (!asn) continue;
    hits[asn->value()] += stats.hits;
    probes[asn->value()] += stats.probes;
  }
  std::unordered_map<std::uint32_t, double> rate;
  for (const auto& [asn, p] : net::sorted_items(probes)) {
    if (p > 0) rate[asn] = hits[asn] / p;
  }
  return rate;
}

}  // namespace itm::scan
