#include "scan/cache_prober.h"

#include <algorithm>
#include <cassert>

namespace itm::scan {

CacheProber::CacheProber(const dns::DnsSystem& dns,
                         const cdn::ServiceCatalog& catalog,
                         const CacheProbeConfig& config,
                         const topology::AddressPlan* plan)
    : dns_(&dns),
      catalog_(&catalog),
      config_(config),
      plan_(plan),
      loss_rng_(config.loss_seed) {
  assert(!config.record_sweeps || plan != nullptr);
  // A measurer would pick popular domains known to support ECS; popularity
  // rank is public knowledge (top lists).
  for (const ServiceId id : catalog.by_popularity()) {
    const auto& s = catalog.service(id);
    if (s.redirection == cdn::RedirectionKind::kDnsRedirection &&
        s.supports_ecs) {
      probe_list_.push_back(id);
      if (probe_list_.size() >= config.probe_services) break;
    }
  }
}

void CacheProber::sweep(std::span<const Ipv4Prefix> prefixes, SimTime now) {
  const std::size_t pops = dns_->public_pops().size();
  SweepRecord* record = nullptr;
  if (config_.record_sweeps) {
    sweep_records_.emplace_back();
    record = &sweep_records_.back();
    record->at = now;
  }
  for (const Ipv4Prefix& prefix : prefixes) {
    PrefixStats& stats = results_[prefix];
    std::uint32_t prefix_hits = 0, prefix_probes = 0;
    for (std::size_t pop = 0; pop < pops; ++pop) {
      bool pop_hit = false;
      for (const ServiceId sid : probe_list_) {
        ++prefix_probes;
        ++total_probes_;
        if (config_.probe_loss > 0 && loss_rng_.bernoulli(config_.probe_loss)) {
          continue;  // probe or response lost in flight
        }
        if (dns_->probe_cache(pop, catalog_->service(sid), prefix, now)) {
          ++prefix_hits;
          pop_hit = true;
          if (config_.stop_after_first_hit) break;
        }
      }
      if (pop_hit && pop < 64) stats.pops_seen |= std::uint64_t{1} << pop;
    }
    stats.hits += prefix_hits;
    stats.probes += prefix_probes;
    if (record != nullptr) {
      if (const auto asn = plan_->origin_of(prefix)) {
        auto& [hits, probes] = record->by_as[asn->value()];
        hits += prefix_hits;
        probes += prefix_probes;
      }
    }
  }
}

std::vector<Ipv4Prefix> CacheProber::detected_prefixes() const {
  std::vector<Ipv4Prefix> out;
  for (const auto& [prefix, stats] : results_) {
    if (stats.hits > 0) out.push_back(prefix);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> CacheProber::prefixes_per_pop() const {
  std::vector<std::size_t> counts(dns_->public_pops().size(), 0);
  for (const auto& [prefix, stats] : results_) {
    for (std::size_t pop = 0; pop < counts.size() && pop < 64; ++pop) {
      if (stats.pops_seen & (std::uint64_t{1} << pop)) ++counts[pop];
    }
  }
  return counts;
}

std::unordered_map<std::uint32_t, double> CacheProber::hit_rate_by_as(
    const topology::AddressPlan& plan) const {
  std::unordered_map<std::uint32_t, double> hits, probes;
  for (const auto& [prefix, stats] : results_) {
    const auto asn = plan.origin_of(prefix);
    if (!asn) continue;
    hits[asn->value()] += stats.hits;
    probes[asn->value()] += stats.probes;
  }
  std::unordered_map<std::uint32_t, double> rate;
  for (const auto& [asn, p] : probes) {
    if (p > 0) rate[asn] = hits[asn] / p;
  }
  return rate;
}

}  // namespace itm::scan
