#include "core/export.h"

#include <iomanip>
#include <unordered_map>

namespace itm::core {

namespace {

// Minimal JSON string escaping (names here are ASCII identifiers, but keep
// the writer safe for arbitrary content).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// AS display name through the layout the map was built with. Both branches
// must return the same bytes (the SoA string table interns the generator's
// names verbatim); the layout-equivalence test diffs the whole export to
// hold this.
std::string_view as_name(const TrafficMap& map, const Scenario& scenario,
                         Asn asn) {
  if (map.layout == DataLayout::kSoa) {
    return scenario.topo().table.name(asn);
  }
  return scenario.topo().graph.info(asn).name;
}

}  // namespace

std::string csv_escape(std::string_view field) {
  // RFC 4180: quote a field containing the separator, a quote or a line
  // break, doubling embedded quotes. Everything else passes through
  // verbatim, so existing exports of plain names are unchanged.
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void export_map_json(const TrafficMap& map, const Scenario& scenario,
                     std::ostream& os) {
  os << std::setprecision(10);
  os << "{\n";
  os << "  \"generator\": \"itm\",\n";
  os << "  \"seed\": " << scenario.config().seed << ",\n";

  // Component 1: users and activity.
  os << "  \"client_prefixes\": [";
  for (std::size_t i = 0; i < map.client_prefixes.size(); ++i) {
    if (i) os << ",";
    os << "\"" << map.client_prefixes[i].to_string() << "\"";
  }
  os << "],\n";
  os << "  \"client_ases\": [\n";
  for (std::size_t i = 0; i < map.client_ases.size(); ++i) {
    const Asn asn = map.client_ases[i];
    os << "    {\"asn\": " << asn.value() << ", \"name\": \""
       << json_escape(as_name(map, scenario, asn)) << "\", \"activity\": "
       << map.activity.score(asn) << "}";
    os << (i + 1 < map.client_ases.size() ? ",\n" : "\n");
  }
  os << "  ],\n";

  // Component 2: serving infrastructure.
  std::unordered_map<Ipv4Addr, GeoPoint> located;
  for (const auto& server : map.server_locations) {
    located.emplace(server.address, server.location);
  }
  os << "  \"servers\": [\n";
  for (std::size_t i = 0; i < map.tls.endpoints.size(); ++i) {
    const auto& ep = map.tls.endpoints[i];
    os << "    {\"address\": \"" << ep.address.to_string()
       << "\", \"operator\": \"" << json_escape(ep.inferred_operator)
       << "\", \"origin_asn\": " << ep.origin_as.value() << ", \"offnet\": "
       << (ep.inferred_offnet ? "true" : "false");
    const auto it = located.find(ep.address);
    if (it != located.end()) {
      os << ", \"lat\": " << it->second.lat_deg << ", \"lon\": "
         << it->second.lon_deg;
    }
    os << "}" << (i + 1 < map.tls.endpoints.size() ? ",\n" : "\n");
  }
  os << "  ],\n";

  // Component 3: routes.
  os << "  \"observed_links\": " << map.public_view.link_count() << ",\n";
  os << "  \"recommended_links\": [\n";
  for (std::size_t i = 0; i < map.recommended_links.size(); ++i) {
    const auto& link = map.recommended_links[i];
    os << "    {\"a\": " << link.a.value() << ", \"b\": " << link.b.value()
       << ", \"score\": " << link.score << "}";
    os << (i + 1 < map.recommended_links.size() ? ",\n" : "\n");
  }
  os << "  ]\n";
  os << "}\n";
}

void export_activity_csv(const TrafficMap& map, const Scenario& scenario,
                         std::ostream& os) {
  os << "asn,name,activity_score\n";
  for (const Asn asn : map.client_ases) {
    os << asn.value() << "," << csv_escape(as_name(map, scenario, asn))
       << "," << map.activity.score(asn) << "\n";
  }
}

void export_servers_csv(const TrafficMap& map, const Scenario& scenario,
                        std::ostream& os) {
  (void)scenario;
  std::unordered_map<Ipv4Addr, GeoPoint> located;
  for (const auto& server : map.server_locations) {
    located.emplace(server.address, server.location);
  }
  os << "address,operator,origin_asn,offnet,lat,lon\n";
  for (const auto& ep : map.tls.endpoints) {
    os << ep.address.to_string() << "," << csv_escape(ep.inferred_operator)
       << ","
       << ep.origin_as.value() << "," << (ep.inferred_offnet ? 1 : 0) << ",";
    const auto it = located.find(ep.address);
    if (it != located.end()) {
      os << it->second.lat_deg << "," << it->second.lon_deg;
    } else {
      os << ",";
    }
    os << "\n";
  }
}

void export_recommended_links_csv(const TrafficMap& map,
                                  const Scenario& scenario,
                                  std::ostream& os) {
  os << "asn_a,name_a,asn_b,name_b,score\n";
  for (const auto& link : map.recommended_links) {
    os << link.a.value() << ","
       << csv_escape(as_name(map, scenario, link.a)) << ","
       << link.b.value() << ","
       << csv_escape(as_name(map, scenario, link.b)) << ","
       << link.score << "\n";
  }
}

}  // namespace itm::core
