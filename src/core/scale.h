// Scale tiers: the pinned substrate sizes the bench trajectory is measured
// at (DESIGN.md decision #10).
//
// A tier bundles a scenario size, a pinned RNG seed and a map-build
// configuration, so "the medium-tier build" names one exact, reproducible
// workload: BENCH_medium.json records produced months apart are measurements
// of the same world and comparable bar-for-bar. Tiers:
//
//   tiny   — the unit-test scenario (~70 ASes). Fast enough for a per-commit
//            bench gate (tools/check_bench.sh).
//   medium — the CI scale point: >= 10k ASes, >= 100k routable /24s. Runs
//            the full pipeline in minutes; `ctest -L scale` smokes it.
//   huge   — the Internet-shaped target: ~75k ASes, ~1M routable /24s
//            (the paper's Table 1 magnitudes). Defined and generable, but
//            benched on demand, not in CI.
//
// This header is dependency-light on purpose: MapBuildOptions carries a
// ScaleTier, so traffic_map.h includes it.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace itm::core {

struct ScenarioConfig;   // core/scenario.h
struct MapBuildOptions;  // core/traffic_map.h

enum class ScaleTier : std::uint8_t { kTiny, kMedium, kHuge };

[[nodiscard]] const char* to_string(ScaleTier tier);
// "tiny" / "medium" / "huge" -> tier; anything else -> nullopt.
[[nodiscard]] std::optional<ScaleTier> parse_scale_tier(std::string_view name);

// The tier's pinned scenario seed. Benches must not take the seed from the
// command line at a pinned tier — a different seed is a different world and
// its numbers are not comparable to the committed BENCH_*.json trajectory.
[[nodiscard]] std::uint64_t tier_seed(ScaleTier tier);

// Scenario generation config for the tier (seed already pinned).
[[nodiscard]] ScenarioConfig tier_config(ScaleTier tier);

// Map-build options scaled to the tier: larger tiers dial probe rounds and
// routing destinations down so the full pipeline stays tractable while every
// stage still runs. Deterministic for a fixed tier.
[[nodiscard]] MapBuildOptions tier_build_options(ScaleTier tier);

}  // namespace itm::core
