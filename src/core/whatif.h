// What-if analysis: ground-truth simulation of an AS failure.
//
// The TrafficMap *estimates* outage impact from public data
// (TrafficMap::outage_impact); this module computes what actually happens
// when an AS goes dark — clients offline, off-net caches lost, services
// unreachable, traffic re-routed over the surviving topology — so benches
// can score the map's estimates and operators can study mitigation.
// The failed AS keeps its node (dense ASNs stay valid) but loses every link,
// its users, its hosted caches and its origin servers.
#pragma once

#include <vector>

#include "core/scenario.h"

namespace itm::core {

struct WhatIfReport {
  Asn failed{0};
  // Share of baseline bytes whose client is inside the failed AS (offline).
  double client_bytes_lost = 0.0;
  // Share of baseline bytes to services whose only origin was inside.
  double service_bytes_lost = 0.0;
  // Share of baseline bytes that used to be served from off-net caches
  // inside the failed AS and now travel to on-net sites.
  double offnet_bytes_displaced = 0.0;
  // Load-shift index: sum of positive per-link load increases divided by
  // the surviving link-crossing volume — how much of the surviving traffic
  // had to move onto different interconnects.
  double link_load_shifted = 0.0;
  // Total bytes before and after (after excludes lost traffic).
  double baseline_bytes = 0.0;
  double surviving_bytes = 0.0;
  // Per-link load delta (indexed like AsGraph::links() of the baseline
  // graph), for spotting which interconnects absorb the shift.
  std::vector<double> link_delta;

  struct LinkShift {
    Asn a{0};
    Asn b{0};
    double delta_bytes = 0.0;
  };
  // Largest load increases, descending.
  [[nodiscard]] std::vector<LinkShift> top_gaining_links(
      const topology::AsGraph& graph, std::size_t k = 10) const;
};

// Simulates the hard failure of `failed` and returns the ground-truth
// impact. Cost: one topology copy plus one traffic-matrix rebuild.
[[nodiscard]] WhatIfReport simulate_as_failure(const Scenario& scenario,
                                               Asn failed);

struct LinkFailureReport {
  Asn a{0};
  Asn b{0};
  // Bytes the link carried before the failure.
  double link_bytes_before = 0.0;
  // Share of baseline bytes left with no route after the cut (single-homed
  // customers behind the link).
  double bytes_disconnected = 0.0;
  // Load-shift index over surviving links (as in WhatIfReport).
  double link_load_shifted = 0.0;
  std::vector<double> link_delta;  // indexed like the baseline links
  [[nodiscard]] std::vector<WhatIfReport::LinkShift> top_gaining_links(
      const topology::AsGraph& graph, std::size_t k = 10) const;
};

// Simulates cutting one AS-level link (e.g. a congested/failed
// interconnect, the paper's "each congested interconnect impacts the same
// amount of traffic" fallacy) and reports the ground-truth impact.
[[nodiscard]] LinkFailureReport simulate_link_failure(
    const Scenario& scenario, std::size_t link_index);

}  // namespace itm::core
