#include "core/scale.h"

#include "core/scenario.h"
#include "core/traffic_map.h"

namespace itm::core {

namespace {

// Pinned per-tier scenario seeds. Arbitrary but frozen: changing one resets
// the tier's bench trajectory (every committed BENCH_<tier>.json becomes
// incomparable), so treat them like a file-format constant.
constexpr std::uint64_t kTinySeed = 1117;
constexpr std::uint64_t kMediumSeed = 10111;
constexpr std::uint64_t kHugeSeed = 75011;

}  // namespace

const char* to_string(ScaleTier tier) {
  switch (tier) {
    case ScaleTier::kTiny: return "tiny";
    case ScaleTier::kMedium: return "medium";
    case ScaleTier::kHuge: return "huge";
  }
  return "unknown";
}

std::optional<ScaleTier> parse_scale_tier(std::string_view name) {
  if (name == "tiny") return ScaleTier::kTiny;
  if (name == "medium") return ScaleTier::kMedium;
  if (name == "huge") return ScaleTier::kHuge;
  return std::nullopt;
}

std::uint64_t tier_seed(ScaleTier tier) {
  switch (tier) {
    case ScaleTier::kTiny: return kTinySeed;
    case ScaleTier::kMedium: return kMediumSeed;
    case ScaleTier::kHuge: return kHugeSeed;
  }
  return kTinySeed;
}

ScenarioConfig tier_config(ScaleTier tier) {
  switch (tier) {
    case ScaleTier::kTiny:
      return tiny_config(kTinySeed);

    case ScaleTier::kMedium: {
      // >= 10k ASes and >= 100k routable /24s: the smallest size where the
      // SoA columns, CSR adjacency and the compressed trie are exercised at
      // meaningfully more than cache-resident scale.
      ScenarioConfig c;
      c.seed = kMediumSeed;
      c.topology.geography.num_countries = 12;
      c.topology.geography.cities_per_country = 8;
      c.topology.num_tier1 = 12;
      c.topology.num_transit = 400;
      c.topology.num_access = 8000;
      c.topology.num_content = 1600;
      c.topology.num_hypergiants = 8;
      c.topology.num_enterprise = 2000;
      c.topology.addressing.user_24s_per_access_as = 16.0;
      c.topology.addressing.content_24s_per_hypergiant = 32.0;
      c.services.num_hypergiant_services = 150;
      c.services.num_longtail_services = 300;
      c.dns.public_pop_target = 24;
      return c;
    }

    case ScaleTier::kHuge: {
      // Internet-shaped magnitudes (paper Table 1): ~75k ASes and ~1M
      // routable /24s. Generable on a laptop; benched on demand.
      ScenarioConfig c;
      c.seed = kHugeSeed;
      c.topology.geography.num_countries = 20;
      c.topology.geography.cities_per_country = 10;
      c.topology.num_tier1 = 15;
      c.topology.num_transit = 1500;
      c.topology.num_access = 50000;
      c.topology.num_content = 15000;
      c.topology.num_hypergiants = 10;
      c.topology.num_enterprise = 8000;
      c.topology.addressing.user_24s_per_access_as = 16.0;
      c.topology.addressing.content_24s_per_hypergiant = 48.0;
      c.services.num_hypergiant_services = 200;
      c.services.num_longtail_services = 400;
      c.dns.public_pop_target = 32;
      return c;
    }
  }
  return tiny_config(kTinySeed);
}

MapBuildOptions tier_build_options(ScaleTier tier) {
  MapBuildOptions options;
  options.tier = tier;
  switch (tier) {
    case ScaleTier::kTiny:
      // The unit-test shape: every knob at its default.
      break;
    case ScaleTier::kMedium:
      // Full pipeline, sampled measurement surfaces: a lighter simulated
      // day, fewer probe sweeps and a strided destination set keep the
      // O(events) workload and O(destinations x graph) routing stages
      // inside a CI budget while every stage still executes.
      options.workload.queries_per_activity = 2.0;
      options.workload.sessions_per_user = 0.5;
      options.workload.top_services = 24;
      options.probe_rounds = 2;
      options.ecs_map_services = 4;
      options.routing_destination_stride = 16;
      break;
    case ScaleTier::kHuge:
      options.workload.queries_per_activity = 1.0;
      options.workload.sessions_per_user = 0.25;
      options.workload.top_services = 16;
      options.probe_rounds = 2;
      options.ecs_map_services = 2;
      options.routing_destination_stride = 256;
      break;
  }
  return options;
}

}  // namespace itm::core
