// Serialization of the traffic map: JSON for programmatic consumers and CSV
// for spreadsheet/plotting workflows. The export contains only map-derived
// (public) data, never scenario ground truth, so a dump is exactly what a
// real deployment could publish.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "core/scenario.h"
#include "core/traffic_map.h"

namespace itm::core {

// RFC 4180 CSV field escaping: fields containing a comma, quote or line
// break are quoted with embedded quotes doubled; anything else is returned
// unchanged. Used by every CSV exporter below for name/operator fields.
[[nodiscard]] std::string csv_escape(std::string_view field);

// Whole-map JSON document: metadata, client prefixes/ASes with activity
// scores, TLS endpoints, geolocated servers, recommended links.
void export_map_json(const TrafficMap& map, const Scenario& scenario,
                     std::ostream& os);

// CSV: asn,name,activity_score (detected ASes only).
void export_activity_csv(const TrafficMap& map, const Scenario& scenario,
                         std::ostream& os);

// CSV: address,operator,origin_asn,offnet,lat,lon (TLS endpoints; location
// present when geolocated).
void export_servers_csv(const TrafficMap& map, const Scenario& scenario,
                        std::ostream& os);

// CSV: asn_a,name_a,asn_b,name_b,score (recommended peering links).
void export_recommended_links_csv(const TrafficMap& map,
                                  const Scenario& scenario, std::ostream& os);

}  // namespace itm::core
