// Small text-report helpers shared by benches and examples: fixed-width
// tables and percentage formatting, so every experiment prints rows that are
// easy to diff against EXPERIMENTS.md.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace itm::core {

inline std::string pct(double fraction, int decimals = 1) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0 << "%";
  return os.str();
}

inline std::string num(double value, int decimals = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

// Prints rows of equal arity with column alignment.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  template <typename... Cells>
  void row(Cells&&... cells) {
    std::vector<std::string> r;
    (r.push_back(to_cell(std::forward<Cells>(cells))), ...);
    rows_.push_back(std::move(r));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) {
      widths[c] = header_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    const auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
           << cells[c];
      }
      os << "\n";
    };
    line(header_);
    std::vector<std::string> dashes;
    for (const auto w : widths) dashes.push_back(std::string(w, '-'));
    line(dashes);
    for (const auto& r : rows_) line(r);
  }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v) { return num(v); }
  template <typename T>
  static std::string to_cell(T v)
    requires std::is_integral_v<T>
  {
    return std::to_string(v);
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace itm::core
