// Scenario: a fully-generated synthetic Internet with ground truth.
//
// Composes every substrate in dependency order from a single seed:
// topology -> CDN deployment -> service catalog -> client mapping -> users
// -> DNS ecosystem -> ground-truth traffic matrix -> router fleet ->
// APNIC-like estimates -> PeeringDB registry -> TLS inventory.
// All experiments start from a Scenario; identical (config, seed) pairs
// produce identical worlds.
#pragma once

#include <memory>

#include "apnic/estimator.h"
#include "cdn/deployment.h"
#include "cdn/mapping.h"
#include "cdn/services.h"
#include "cdn/tls.h"
#include "dns/system.h"
#include "net/rng.h"
#include "scan/ipid.h"
#include "topology/generator.h"
#include "topology/peeringdb.h"
#include "traffic/demand.h"
#include "traffic/user_base.h"

namespace itm::core {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  topology::TopologyConfig topology;
  cdn::DeploymentConfig deployment;
  cdn::ServiceCatalogConfig services;
  cdn::MappingConfig mapping;
  traffic::UserBaseConfig users;
  dns::DnsConfig dns;
  traffic::DemandConfig demand;
  scan::RouterFleetConfig routers;
  apnic::ApnicConfig apnic;
  topology::PeeringDbConfig peeringdb;
};

// Ready-made sizes. kTiny for unit tests, kDefault for examples and most
// benches, kLarge for the headline coverage benches.
[[nodiscard]] ScenarioConfig tiny_config(std::uint64_t seed = 42);
[[nodiscard]] ScenarioConfig default_config(std::uint64_t seed = 42);
[[nodiscard]] ScenarioConfig large_config(std::uint64_t seed = 42);

class Scenario {
 public:
  static std::unique_ptr<Scenario> generate(const ScenarioConfig& config);

  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] const topology::Topology& topo() const { return *topo_; }
  [[nodiscard]] const cdn::Deployment& deployment() const {
    return *deployment_;
  }
  [[nodiscard]] const cdn::ServiceCatalog& catalog() const {
    return *catalog_;
  }
  [[nodiscard]] const cdn::ClientMapper& mapper() const { return *mapper_; }
  [[nodiscard]] const traffic::UserBase& users() const { return *users_; }
  [[nodiscard]] dns::DnsSystem& dns() { return *dns_; }
  [[nodiscard]] const dns::DnsSystem& dns() const { return *dns_; }
  [[nodiscard]] const traffic::TrafficMatrix& matrix() const {
    return *matrix_;
  }
  [[nodiscard]] const scan::RouterFleet& routers() const { return *routers_; }
  [[nodiscard]] const apnic::ApnicEstimates& apnic() const { return *apnic_; }
  [[nodiscard]] const topology::PeeringDb& peeringdb() const { return *pdb_; }
  [[nodiscard]] const cdn::TlsInventory& tls() const { return *tls_; }

  // A fresh RNG stream derived from the scenario seed (stable per purpose).
  [[nodiscard]] Rng fork_rng(std::uint64_t purpose) const {
    Rng base(config_.seed ^ 0xa02fc0deull);
    return base.fork(purpose);
  }

 private:
  Scenario() = default;

  ScenarioConfig config_;
  std::unique_ptr<topology::Topology> topo_;
  std::unique_ptr<cdn::Deployment> deployment_;
  std::unique_ptr<cdn::ServiceCatalog> catalog_;
  std::unique_ptr<cdn::ClientMapper> mapper_;
  std::unique_ptr<traffic::UserBase> users_;
  std::unique_ptr<dns::DnsSystem> dns_;
  std::unique_ptr<traffic::TrafficMatrix> matrix_;
  std::unique_ptr<scan::RouterFleet> routers_;
  std::unique_ptr<apnic::ApnicEstimates> apnic_;
  std::unique_ptr<topology::PeeringDb> pdb_;
  std::unique_ptr<cdn::TlsInventory> tls_;
};

}  // namespace itm::core
