// Workload driver: one simulated day of client behaviour.
//
// Generates a time-ordered stream of DNS resolution events (per user /24,
// service sampled by popularity, diurnally modulated by the prefix's local
// time) and hourly Chromium browser-start batches (which trigger root-DNS
// probe queries). Measurement code interleaves with the stream by calling
// advance_to() before reading DNS cache or root-log state, reproducing a
// real measurement day where probing races against TTL expiry.
#pragma once

#include <vector>

#include "core/scenario.h"
#include "net/sim_time.h"

namespace itm::core {

struct WorkloadConfig {
  // Expected DNS queries per unit of prefix activity per day. The default
  // makes a median prefix resolve popular names a few times per TTL.
  double queries_per_activity = 8.0;
  // Browser starts per user per day (each triggers 3 root probes).
  double sessions_per_user = 2.0;
  // Only the N most popular services generate simulated queries (the tail
  // adds cost but no measurement signal).
  std::size_t top_services = 48;
  SimTime duration = kSecondsPerDay;
  // Chromium probes per browser start (Chromium issues 3 random labels).
  std::uint32_t probes_per_session = 3;
};

class Workload {
 public:
  Workload(Scenario& scenario, const WorkloadConfig& config,
           std::uint64_t seed);

  // Processes all events with time < t (idempotent for earlier t).
  void advance_to(SimTime t);
  // Processes the remainder of the day.
  void finish() { advance_to(config_.duration + 1); }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t total_events() const { return events_.size(); }
  [[nodiscard]] std::size_t processed_events() const { return cursor_; }

 private:
  struct Event {
    std::uint32_t time;
    std::uint32_t prefix_index;
    // Service index into the sampled top list, or kChromium.
    std::int32_t service;
    std::uint32_t count;  // batch size (Chromium batches)
  };
  static constexpr std::int32_t kChromium = -1;

  Scenario* scenario_;
  WorkloadConfig config_;
  Rng rng_;
  std::vector<Event> events_;
  std::vector<ServiceId> top_services_;
  std::size_t cursor_ = 0;
  SimTime now_ = 0;
};

}  // namespace itm::core
