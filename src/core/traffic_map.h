// The Internet Traffic Map: the assembled data product, and the builder
// pipeline that constructs it from public-data measurements only.
//
// The map's three components (Table 1 of the paper):
//   1. where users are and their relative activity,
//   2. where popular services are hosted and the user-to-host mapping,
//   3. the routes commonly used between them (observed + recommended links).
// MapBuilder never touches scenario ground truth except through legitimate
// measurement surfaces (cache probes, root-log crawls, TLS/SNI sweeps, ECS
// mapping queries, public BGP feeds, PeeringDB); benches then score the map
// against the ground truth the scenario kept hidden.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "core/scale.h"
#include "core/scenario.h"
#include "core/workload.h"
#include "inference/activity.h"
#include "inference/client_detection.h"
#include "inference/geolocation.h"
#include "inference/recommender.h"
#include "routing/prediction.h"
#include "routing/public_view.h"
#include "scan/cache_prober.h"
#include "scan/root_crawler.h"
#include "scan/tls_scanner.h"

namespace itm::core {

// Which per-AS access path the map's consumers (JSON export, snapshot
// compilation) read topology attributes through:
//   kLegacy — the AoS AsGraph/AsInfo structs, the pre-SoA code shape;
//   kSoa    — the flat topology::AsTable columns and its interned strings.
// Both paths are kept because the determinism contract requires them to be
// byte-identical (DESIGN.md decision #10); the layout-equivalence test
// builds the same map through each and diffs every export.
enum class DataLayout : std::uint8_t { kLegacy, kSoa };

[[nodiscard]] const char* to_string(DataLayout layout);

struct MapBuildOptions {
  WorkloadConfig workload;
  // Access-path selector recorded on the built map; kSoa is the default
  // and the scale-friendly path.
  DataLayout layout = DataLayout::kSoa;
  // Scale tier this build is part of (informational: recorded in metrics so
  // bench output is self-describing; tier_build_options() sets the knobs).
  ScaleTier tier = ScaleTier::kTiny;
  scan::CacheProbeConfig probing;
  // Cache-probing sweeps, spread evenly across the day.
  std::size_t probe_rounds = 16;
  // ECS mapping sweeps: the N most popular ECS services.
  std::size_t ecs_map_services = 6;
  // Peering links to accept from the recommender.
  std::size_t recommend_links = 400;
  // Fraction of transit ASes feeding route collectors.
  double collector_feeder_fraction = 0.15;
  // Route-collection destination sampling: keep every k-th AS (dense ASN
  // order) as a BGP destination. 1 = every AS (the legacy behaviour).
  // Collecting a view is O(destinations x (V + E)), so larger tiers use a
  // stride to stay inside a CI budget; sampling by stride is deterministic
  // and covers all AS types (ASNs are assigned per type in contiguous
  // blocks).
  std::size_t routing_destination_stride = 1;
  // Worker threads for the sharded stages (cache probing, TLS scan, ECS
  // mapping, BGP propagation). 0 = hardware concurrency; 1 = the exact
  // legacy serial path. Output is byte-identical for every value — threads
  // only change wall-clock time (DESIGN.md decision #6).
  std::size_t threads = 0;
  // Invoked at the start of each pipeline stage with the stage's span name
  // ("map.workload_probe", ...); the CLI's --verbose progress hook.
  std::function<void(const char* stage)> on_stage;
};

// Pipeline stage names as they appear in the tracer (obs::Span names) and in
// `itm map --trace-out` output, in execution order.
inline constexpr const char* kMapStageNames[] = {
    "map.workload_probe", "map.tls_scan", "map.ecs_map", "map.routing",
    "map.inference"};

// Wall-clock seconds spent in each pipeline stage of the last build. A
// compatibility *view* over the obs tracer spans (one per kMapStageNames
// entry) — the tracer is the single source of truth; this struct is filled
// from the span durations when a build finishes.
struct MapBuildTimings {
  double workload_probe_s = 0.0;
  double tls_scan_s = 0.0;
  double ecs_map_s = 0.0;
  double routing_s = 0.0;
  double inference_s = 0.0;
  [[nodiscard]] double total_s() const {
    return workload_probe_s + tls_scan_s + ecs_map_s + routing_s +
           inference_s;
  }
};

struct OutageImpact {
  // Share of the map's detected activity in the failed AS.
  double activity_share = 0.0;
  std::size_t client_prefixes = 0;
  // Services with front ends mapped inside the failed AS (e.g. off-nets).
  std::vector<ServiceId> services_served_from;
  // Front-end addresses inside the failed AS.
  std::size_t servers_inside = 0;
};

class TrafficMap {
 public:
  // Access path the map was built with (copied from MapBuildOptions);
  // consumers branch on this so legacy-vs-SoA byte equivalence stays
  // testable.
  DataLayout layout = DataLayout::kSoa;

  // ---- Component 1: users ----
  std::vector<Ipv4Prefix> client_prefixes;
  std::vector<Asn> client_ases;  // combined prefix- and resolver-derived
  inference::ActivityEstimate activity;

  // ---- Component 2: services ----
  scan::TlsScanResult tls;
  std::vector<inference::GeolocatedServer> server_locations;
  // service -> (client /24 -> front end) for ECS-mappable services.
  std::unordered_map<std::uint32_t,
                     std::unordered_map<Ipv4Prefix, Ipv4Addr>>
      user_mapping;

  // ---- Component 3: routes ----
  routing::PublicView public_view;
  topology::AsGraph observed_graph;
  std::vector<inference::LinkCandidate> recommended_links;
  topology::AsGraph augmented_graph;

  // Total estimated activity over all detected ASes.
  [[nodiscard]] double total_activity() const;

  // Map-only estimate of an AS outage's impact (uses no ground truth).
  [[nodiscard]] OutageImpact outage_impact(
      Asn failed, const topology::AddressPlan& plan) const;
};

class MapBuilder {
 public:
  explicit MapBuilder(Scenario& scenario) : scenario_(&scenario) {}

  [[nodiscard]] TrafficMap build(const MapBuildOptions& options = {});

  // Measurement byproducts of the last build (for benches).
  [[nodiscard]] const scan::CacheProber* last_prober() const {
    return prober_.get();
  }
  [[nodiscard]] const scan::RootCrawlResult& last_crawl() const {
    return crawl_;
  }
  // Per-stage wall time of the last build (for benches and the CLI); a view
  // over the obs tracer's stage spans. The full span record — including
  // per-sweep sub-spans — lives in the obs::Tracer that was current during
  // build() (see `itm map --trace-out`).
  [[nodiscard]] const MapBuildTimings& last_timings() const {
    return timings_;
  }

 private:
  Scenario* scenario_;
  std::unique_ptr<scan::CacheProber> prober_;
  scan::RootCrawlResult crawl_;
  MapBuildTimings timings_;
};

}  // namespace itm::core
