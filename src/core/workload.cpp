#include "core/workload.h"

#include <algorithm>
#include <cassert>

namespace itm::core {

Workload::Workload(Scenario& scenario, const WorkloadConfig& config,
                   std::uint64_t seed)
    : scenario_(&scenario), config_(config), rng_(seed ^ 0x5eedf00dull) {
  const auto& users = scenario.users();
  const auto& catalog = scenario.catalog();
  const auto& geo = scenario.topo().geography;

  // Top services by popularity, with a sampling CDF over them.
  const auto ranked = catalog.by_popularity();
  const std::size_t n =
      std::min(config.top_services, ranked.size());
  top_services_.assign(ranked.begin(), ranked.begin() + static_cast<long>(n));
  std::vector<double> cdf(n);
  double top_share = 0;
  for (std::size_t i = 0; i < n; ++i) {
    top_share += catalog.service(top_services_[i]).popularity;
    cdf[i] = top_share;
  }
  for (auto& c : cdf) c /= top_share;

  const double day_fraction =
      static_cast<double>(config.duration) / kSecondsPerDay;
  constexpr double kDiurnalMax = 1.8;  // rejection-sampling envelope

  const auto prefixes = users.all();
  for (std::size_t pi = 0; pi < prefixes.size(); ++pi) {
    const auto& up = prefixes[pi];
    const double lon = geo.city(up.city).location.lon_deg;

    // DNS resolution events for top services.
    const double expected =
        up.activity * config.queries_per_activity * top_share * day_fraction;
    const std::uint64_t count = rng_.poisson(expected);
    for (std::uint64_t q = 0; q < count; ++q) {
      // Diurnal inhomogeneous Poisson via thinning.
      std::uint32_t t;
      do {
        t = static_cast<std::uint32_t>(rng_.next_below(config.duration));
      } while (rng_.uniform() * kDiurnalMax > diurnal_at(t, lon));
      const double u = rng_.uniform();
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
      const auto service =
          static_cast<std::int32_t>(it - cdf.begin());
      events_.push_back(Event{t, static_cast<std::uint32_t>(pi), service, 1});
    }

    // Hourly Chromium browser-start batches.
    const double sessions_per_day =
        up.users * config.sessions_per_user * up.chromium_share;
    for (SimTime hour = 0; hour + kSecondsPerHour <= config.duration;
         hour += kSecondsPerHour) {
      const double rate = sessions_per_day / 24.0 *
                          diurnal_at(hour + kSecondsPerHour / 2, lon);
      const std::uint64_t sessions = rng_.poisson(rate);
      if (sessions == 0) continue;
      events_.push_back(Event{
          static_cast<std::uint32_t>(hour + rng_.next_below(kSecondsPerHour)),
          static_cast<std::uint32_t>(pi), kChromium,
          static_cast<std::uint32_t>(sessions)});
    }
  }
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });
}

void Workload::advance_to(SimTime t) {
  auto& dns = scenario_->dns();
  const auto& users = scenario_->users();
  const auto& catalog = scenario_->catalog();
  const auto prefixes = users.all();
  while (cursor_ < events_.size() && events_[cursor_].time < t) {
    const Event& e = events_[cursor_++];
    const auto& up = prefixes[e.prefix_index];
    if (e.service == kChromium) {
      dns.chromium_probe(up, e.count * config_.probes_per_session, e.time,
                         rng_);
    } else {
      const auto& service =
          catalog.service(top_services_[static_cast<std::size_t>(e.service)]);
      dns.resolve(up, service, e.time, rng_);
    }
  }
  now_ = std::max(now_, t);
}

}  // namespace itm::core
