#include "core/whatif.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace itm::core {

std::vector<WhatIfReport::LinkShift> WhatIfReport::top_gaining_links(
    const topology::AsGraph& graph, std::size_t k) const {
  std::vector<LinkShift> shifts;
  for (std::size_t li = 0; li < link_delta.size(); ++li) {
    if (link_delta[li] <= 0) continue;
    const auto& link = graph.links()[li];
    shifts.push_back(LinkShift{link.a, link.b, link_delta[li]});
  }
  std::sort(shifts.begin(), shifts.end(),
            [](const LinkShift& a, const LinkShift& b) {
              return a.delta_bytes > b.delta_bytes;
            });
  if (shifts.size() > k) shifts.resize(k);
  return shifts;
}

WhatIfReport simulate_as_failure(const Scenario& scenario, Asn failed) {
  const auto& topo = scenario.topo();
  // A hard check, not an assert: release builds (NDEBUG) would otherwise
  // fall through and compute garbage mappings for a site-less hypergiant.
  if (topo.graph.info(failed).type == topology::AsType::kHypergiant) {
    throw std::invalid_argument(
        "simulate_as_failure: failing a hypergiant AS is not supported "
        "(its services would have no serving sites)");
  }

  WhatIfReport report;
  report.failed = failed;
  const auto& baseline = scenario.matrix();
  report.baseline_bytes = baseline.total_bytes();
  report.client_bytes_lost =
      baseline.as_client_bytes(failed) / baseline.total_bytes();
  for (const auto& svc : scenario.catalog().services()) {
    if (svc.origin_as == failed && !svc.hypergiant) {
      report.service_bytes_lost +=
          baseline.service_bytes(svc.id) / baseline.total_bytes();
    }
  }

  // Off-net bytes that were served inside the failed AS (all to its own
  // clients, hence part of the lost traffic; reported for context).
  const auto prefixes = scenario.users().all();
  for (const auto& up : prefixes) {
    if (up.asn != failed) continue;
    for (const auto& svc : scenario.catalog().services()) {
      if (!svc.hypergiant || !svc.offnet_cacheable) continue;
      if (scenario.deployment().offnet_in(*svc.hypergiant, failed) ==
          nullptr) {
        continue;
      }
      const double hit = scenario.deployment()
                             .hypergiant(*svc.hypergiant)
                             .offnet_hit_ratio;
      report.offnet_bytes_displaced += up.activity * svc.popularity *
                                       scenario.config().demand.bytes_scale *
                                       hit / baseline.total_bytes();
    }
  }

  // ---- Rebuild the world without the failed AS's links/users/caches.
  topology::Topology degraded;
  degraded.geography = topo.geography;
  degraded.graph =
      topology::copy_graph(topo.graph, [failed](const topology::Link& link) {
        return link.a != failed && link.b != failed;
      });
  degraded.ixps = topo.ixps;
  for (auto& ixp : degraded.ixps) {
    std::erase(ixp.members, failed);
    std::erase(ixp.route_server_participants, failed);
  }
  degraded.tier1s = topo.tier1s;
  degraded.transits = topo.transits;
  degraded.accesses = topo.accesses;
  degraded.contents = topo.contents;
  degraded.hypergiants = topo.hypergiants;
  degraded.enterprises = topo.enterprises;
  // Address layout depends only on the (unchanged) AS list and config.
  degraded.addresses = topology::AddressPlan::build(
      degraded.graph, scenario.config().topology.addressing);

  const auto deployment = scenario.deployment().without_as(failed);
  const cdn::ClientMapper mapper(degraded, deployment,
                                 scenario.config().mapping);
  const auto users = scenario.users().without_as(failed);

  std::vector<CityId> pop_cities;
  for (const auto& pop : scenario.dns().public_pops()) {
    pop_cities.push_back(pop.city);
  }
  const auto after = traffic::TrafficMatrix::build(
      degraded, users, scenario.catalog(), mapper, pop_cities,
      scenario.config().demand);
  // Demand to unreachable servers (e.g. origins inside the failed AS) is
  // still generated but undeliverable; exclude it from surviving traffic.
  report.surviving_bytes = after.total_bytes() - after.unreachable_bytes();

  // ---- Link deltas, matched by endpoints across the two graphs.
  std::unordered_map<std::uint64_t, std::size_t> baseline_index;
  for (std::size_t li = 0; li < topo.graph.links().size(); ++li) {
    baseline_index.emplace(
        asn_pair_key(topo.graph.links()[li].a, topo.graph.links()[li].b), li);
  }
  report.link_delta.assign(topo.graph.links().size(), 0.0);
  for (std::size_t li = 0; li < topo.graph.links().size(); ++li) {
    report.link_delta[li] = -baseline.link_bytes()[li];
  }
  const auto after_links = after.link_bytes();
  double positive_shift = 0, after_crossings = 0;
  for (std::size_t li = 0; li < degraded.graph.links().size(); ++li) {
    const auto& link = degraded.graph.links()[li];
    const auto it = baseline_index.find(asn_pair_key(link.a, link.b));
    assert(it != baseline_index.end());
    report.link_delta[it->second] += after_links[li];
    after_crossings += after_links[li];
  }
  for (const double d : report.link_delta) {
    if (d > 0) positive_shift += d;
  }
  report.link_load_shifted =
      after_crossings > 0 ? positive_shift / after_crossings : 0.0;
  return report;
}

std::vector<WhatIfReport::LinkShift> LinkFailureReport::top_gaining_links(
    const topology::AsGraph& graph, std::size_t k) const {
  std::vector<WhatIfReport::LinkShift> shifts;
  for (std::size_t li = 0; li < link_delta.size(); ++li) {
    if (link_delta[li] <= 0) continue;
    const auto& link = graph.links()[li];
    shifts.push_back(
        WhatIfReport::LinkShift{link.a, link.b, link_delta[li]});
  }
  std::sort(shifts.begin(), shifts.end(),
            [](const auto& x, const auto& y) {
              return x.delta_bytes > y.delta_bytes;
            });
  if (shifts.size() > k) shifts.resize(k);
  return shifts;
}

LinkFailureReport simulate_link_failure(const Scenario& scenario,
                                        std::size_t link_index) {
  const auto& topo = scenario.topo();
  assert(link_index < topo.graph.links().size());
  const auto& baseline = scenario.matrix();

  LinkFailureReport report;
  const auto& cut = topo.graph.links()[link_index];
  report.a = cut.a;
  report.b = cut.b;
  report.link_bytes_before = baseline.link_bytes()[link_index];

  // Rebuild the world without this single link.
  const auto& cut_link = topo.graph.links()[link_index];
  topology::Topology degraded;
  degraded.geography = topo.geography;
  degraded.graph = topology::copy_graph(
      topo.graph, [&cut_link](const topology::Link& link) {
        return &link != &cut_link;
      });
  degraded.ixps = topo.ixps;
  degraded.tier1s = topo.tier1s;
  degraded.transits = topo.transits;
  degraded.accesses = topo.accesses;
  degraded.contents = topo.contents;
  degraded.hypergiants = topo.hypergiants;
  degraded.enterprises = topo.enterprises;
  degraded.addresses = topology::AddressPlan::build(
      degraded.graph, scenario.config().topology.addressing);

  const cdn::ClientMapper mapper(degraded, scenario.deployment(),
                                 scenario.config().mapping);
  std::vector<CityId> pop_cities;
  for (const auto& pop : scenario.dns().public_pops()) {
    pop_cities.push_back(pop.city);
  }
  const auto after = traffic::TrafficMatrix::build(
      degraded, scenario.users(), scenario.catalog(), mapper, pop_cities,
      scenario.config().demand);

  report.bytes_disconnected =
      (after.unreachable_bytes() - baseline.unreachable_bytes()) /
      baseline.total_bytes();

  // Link deltas: the degraded graph has the same links minus one, in order.
  report.link_delta.assign(topo.graph.links().size(), 0.0);
  const auto after_links = after.link_bytes();
  double positive_shift = 0, after_crossings = 0;
  for (std::size_t li = 0, di = 0; li < topo.graph.links().size(); ++li) {
    if (li == link_index) {
      report.link_delta[li] = -baseline.link_bytes()[li];
      continue;
    }
    report.link_delta[li] =
        after_links[di] - baseline.link_bytes()[li];
    after_crossings += after_links[di];
    ++di;
  }
  for (const double d : report.link_delta) {
    if (d > 0) positive_shift += d;
  }
  report.link_load_shifted =
      after_crossings > 0 ? positive_shift / after_crossings : 0.0;
  return report;
}

}  // namespace itm::core
