#include "core/scenario.h"

namespace itm::core {

ScenarioConfig tiny_config(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  c.topology.geography.num_countries = 4;
  c.topology.geography.cities_per_country = 4;
  c.topology.num_tier1 = 4;
  c.topology.num_transit = 10;
  c.topology.num_access = 30;
  c.topology.num_content = 12;
  c.topology.num_hypergiants = 3;
  c.topology.num_enterprise = 10;
  c.topology.addressing.user_24s_per_access_as = 8.0;
  c.topology.addressing.content_24s_per_hypergiant = 8.0;
  c.services.num_hypergiant_services = 30;
  c.services.num_longtail_services = 40;
  c.dns.public_pop_target = 6;
  return c;
}

ScenarioConfig default_config(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  return c;
}

ScenarioConfig large_config(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  c.topology.geography.num_countries = 10;
  c.topology.geography.cities_per_country = 10;
  c.topology.num_tier1 = 10;
  c.topology.num_transit = 90;
  c.topology.num_access = 600;
  c.topology.num_content = 200;
  c.topology.num_hypergiants = 7;
  c.topology.num_enterprise = 200;
  c.services.num_hypergiant_services = 150;
  c.services.num_longtail_services = 300;
  c.dns.public_pop_target = 20;
  return c;
}

std::unique_ptr<Scenario> Scenario::generate(const ScenarioConfig& config) {
  auto scenario = std::unique_ptr<Scenario>(new Scenario());
  Scenario& s = *scenario;
  s.config_ = config;
  Rng root(config.seed);

  Rng topo_rng = root.fork(1);
  s.topo_ = std::make_unique<topology::Topology>(
      topology::generate_topology(config.topology, topo_rng));

  Rng deploy_rng = root.fork(2);
  s.deployment_ = std::make_unique<cdn::Deployment>(
      cdn::Deployment::build(*s.topo_, config.deployment, deploy_rng));

  Rng service_rng = root.fork(3);
  s.catalog_ = std::make_unique<cdn::ServiceCatalog>(cdn::ServiceCatalog::generate(
      *s.topo_, *s.deployment_, config.services, service_rng));

  s.mapper_ = std::make_unique<cdn::ClientMapper>(*s.topo_, *s.deployment_,
                                                  config.mapping);

  Rng user_rng = root.fork(4);
  s.users_ = std::make_unique<traffic::UserBase>(
      traffic::UserBase::build(*s.topo_, config.users, user_rng));

  Rng dns_rng = root.fork(5);
  s.dns_ = std::make_unique<dns::DnsSystem>(*s.topo_, *s.users_, *s.catalog_,
                                            *s.mapper_, config.dns, dns_rng);

  std::vector<CityId> pop_cities;
  for (const auto& pop : s.dns_->public_pops()) {
    pop_cities.push_back(pop.city);
  }
  s.matrix_ = std::make_unique<traffic::TrafficMatrix>(
      traffic::TrafficMatrix::build(*s.topo_, *s.users_, *s.catalog_,
                                    *s.mapper_, pop_cities, config.demand));

  Rng router_rng = root.fork(6);
  s.routers_ = std::make_unique<scan::RouterFleet>(scan::RouterFleet::build(
      *s.topo_, *s.matrix_, config.routers, router_rng));

  Rng apnic_rng = root.fork(7);
  s.apnic_ = std::make_unique<apnic::ApnicEstimates>(apnic::ApnicEstimates::build(
      *s.topo_, *s.users_, config.apnic, apnic_rng));

  Rng pdb_rng = root.fork(8);
  s.pdb_ = std::make_unique<topology::PeeringDb>(topology::PeeringDb::build(
      s.topo_->graph, config.peeringdb, pdb_rng));

  s.tls_ = std::make_unique<cdn::TlsInventory>(
      cdn::TlsInventory::build(*s.topo_, *s.deployment_, *s.catalog_));
  return scenario;
}

}  // namespace itm::core
