#include "core/traffic_map.h"

#include <algorithm>
#include <iterator>

#include "net/executor.h"
#include "net/ordered.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "scan/ecs_mapper.h"

namespace itm::core {

double TrafficMap::total_activity() const {
  double total = 0;
  // Key-sorted iteration: float accumulation order must not depend on hash
  // layout (itm-lint: nondet-iteration).
  for (const auto& [asn, score] : net::sorted_items(activity.by_as)) {
    total += score;
  }
  return total;
}

OutageImpact TrafficMap::outage_impact(Asn failed,
                                       const topology::AddressPlan& plan) const {
  OutageImpact impact;
  const double total = total_activity();
  if (total > 0) impact.activity_share = activity.score(failed) / total;
  for (const Ipv4Prefix& p : client_prefixes) {
    if (const auto asn = plan.origin_of(p); asn && *asn == failed) {
      ++impact.client_prefixes;
    }
  }
  // Front ends inside the failed AS, and the services mapped onto them.
  std::unordered_set<Ipv4Addr> inside;
  for (const auto& ep : tls.endpoints) {
    if (ep.origin_as == failed && !ep.inferred_operator.empty()) {
      inside.insert(ep.address);
    }
  }
  impact.servers_inside = inside.size();
  for (const auto& [service, mapping] : user_mapping) {
    const bool affected = std::any_of(
        mapping.begin(), mapping.end(),
        [&](const auto& kv) { return inside.contains(kv.second); });
    if (affected) {
      impact.services_served_from.push_back(ServiceId(service));
    }
  }
  std::sort(impact.services_served_from.begin(),
            impact.services_served_from.end());
  return impact;
}

namespace {

// Counts the DNS resolution activity a build stage caused: snapshots the
// system's cumulative stats and, on finish(), publishes the delta as obs
// counters. The workload driver is single-threaded, so every value is a pure
// function of the seed — deterministic across thread counts.
class DnsStatsDelta {
 public:
  explicit DnsStatsDelta(const dns::DnsSystem& dns)
      : dns_(&dns), before_(dns.stats()) {}

  void finish() const {
    const auto& after = dns_->stats();
    obs::count("dns.queries", after.queries - before_.queries);
    obs::count("dns.public.queries",
               after.public_queries - before_.public_queries);
    obs::count("dns.public.cache_hits",
               after.public_hits - before_.public_hits);
    obs::count("dns.public.cache_misses",
               after.public_misses - before_.public_misses);
    obs::count("dns.public.ttl_expiries",
               after.public_expired - before_.public_expired);
    obs::count("dns.isp.cache_hits", after.isp_hits - before_.isp_hits);
    obs::count("dns.isp.cache_misses", after.isp_misses - before_.isp_misses);
    obs::count("dns.isp.ttl_expiries",
               after.isp_expired - before_.isp_expired);
    obs::count("dns.cache.insertions", after.insertions - before_.insertions);
    obs::count("dns.cache.evictions", after.purged - before_.purged);
  }

 private:
  const dns::DnsSystem* dns_;
  dns::DnsSystem::Stats before_;
};

}  // namespace

const char* to_string(DataLayout layout) {
  switch (layout) {
    case DataLayout::kLegacy: return "legacy";
    case DataLayout::kSoa: return "soa";
  }
  return "unknown";
}

TrafficMap MapBuilder::build(const MapBuildOptions& options) {
  Scenario& s = *scenario_;
  TrafficMap map;
  map.layout = options.layout;
  timings_ = MapBuildTimings{};
  obs::gauge_set("map.scale_tier", static_cast<std::int64_t>(options.tier));
  const auto stage_begin = [&options](const char* stage) {
    if (options.on_stage) options.on_stage(stage);
  };

  // Substrate arena gauges: how much memory the SoA columns, the interned
  // strings and the origin radix tree hold going into the build. Wall-clock
  // (capacity depends on allocator growth, not the seed).
  {
    const auto& topo0 = s.topo();
    obs::gauge_set("arena.as_table_bytes",
                   static_cast<std::int64_t>(topo0.table.memory_bytes()),
                   obs::Determinism::kWallClock);
    obs::gauge_set(
        "arena.string_table_bytes",
        static_cast<std::int64_t>(topo0.table.strings().memory_bytes()),
        obs::Determinism::kWallClock);
    obs::gauge_set("arena.origin_trie_nodes",
                   static_cast<std::int64_t>(
                       topo0.addresses.origin_trie().node_count()),
                   obs::Determinism::kWallClock);
    obs::gauge_set("arena.origin_trie_bytes",
                   static_cast<std::int64_t>(
                       topo0.addresses.origin_trie().memory_bytes()),
                   obs::Determinism::kWallClock);
  }

  // One pool for every sharded stage; threads=1 is the legacy serial path.
  net::Executor executor(options.threads);

  // ---- Drive a day of user behaviour, probing caches along the way.
  stage_begin("map.workload_probe");
  {
    obs::StageScope span("map.workload_probe", 1, std::size(kMapStageNames));
    const DnsStatsDelta dns_delta(s.dns());
    Workload workload(s, options.workload, s.config().seed ^ 0x17f);
    prober_ = std::make_unique<scan::CacheProber>(
        s.dns(), s.catalog(), options.probing, &s.topo().addresses, &executor);
    const auto routable = s.topo().addresses.routable_slash24s();
    for (std::size_t round = 0; round < options.probe_rounds; ++round) {
      const SimTime at = (2 * round + 1) * options.workload.duration /
                         (2 * options.probe_rounds);
      workload.advance_to(at);
      prober_->sweep(routable, at);
    }
    workload.finish();
    dns_delta.finish();
    obs::count("map.workload_events", workload.processed_events());
    timings_.workload_probe_s = span.close();
  }

  // ---- Component 1: users and activity.
  map.client_prefixes = prober_->detected_prefixes();
  crawl_ = scan::crawl_root_logs(s.dns(), s.topo().addresses);
  const auto root_ases = crawl_.detected_ases();
  map.client_ases = inference::combine_detected(
      map.client_prefixes, root_ases, s.topo().addresses);
  map.activity = inference::combine_activity(
      inference::activity_from_cache_hits(*prober_, s.topo().addresses),
      inference::activity_from_root_logs(crawl_));
  obs::gauge_set("map.client_prefixes",
                 static_cast<std::int64_t>(map.client_prefixes.size()));
  obs::gauge_set("map.client_ases",
                 static_cast<std::int64_t>(map.client_ases.size()));
  obs::gauge_set("scan.root_crawl.detected_ases",
                 static_cast<std::int64_t>(root_ases.size()));

  // ---- Component 2: services.
  stage_begin("map.tls_scan");
  {
    obs::StageScope span("map.tls_scan", 2, std::size(kMapStageNames));
    std::vector<std::string> operator_names;
    for (const auto& hg : s.deployment().hypergiants()) {
      operator_names.push_back(hg.name);
    }
    const scan::TlsScanner tls_scanner(s.tls(), s.topo().addresses);
    map.tls = tls_scanner.sweep(operator_names, executor);
    timings_.tls_scan_s = span.close();
  }

  stage_begin("map.ecs_map");
  {
    obs::StageScope span("map.ecs_map", 3, std::size(kMapStageNames));
    const auto routable = s.topo().addresses.routable_slash24s();
    const scan::EcsMapper ecs_mapper(s.dns().authoritative(),
                                     s.topo().geography.cities().front().id);
    std::size_t mapped = 0;
    for (const ServiceId sid : s.catalog().by_popularity()) {
      if (mapped >= options.ecs_map_services) break;
      const auto& service = s.catalog().service(sid);
      if (service.redirection != cdn::RedirectionKind::kDnsRedirection ||
          !service.supports_ecs) {
        continue;
      }
      map.user_mapping.emplace(sid.value(),
                               ecs_mapper.sweep(service, routable, executor));
      ++mapped;
    }
    obs::gauge_set("map.services_mapped", static_cast<std::int64_t>(mapped));
    timings_.ecs_map_s = span.close();
  }
  // Service-id-sorted sweep list: geolocation appends client points per
  // server in sweep order, and the geometric median is a float computation
  // whose result depends on that order (itm-lint: nondet-iteration).
  std::vector<const std::unordered_map<Ipv4Prefix, Ipv4Addr>*> sweeps;
  sweeps.reserve(map.user_mapping.size());
  for (const auto sid : net::sorted_keys(map.user_mapping)) {
    sweeps.push_back(&map.user_mapping.at(sid));
  }
  // Client-side geolocation database: AS home city (public-geo accuracy).
  const auto& topo = s.topo();
  const inference::PrefixLocator locator =
      [&topo](const Ipv4Prefix& prefix) -> std::optional<GeoPoint> {
    const auto asn = topo.addresses.origin_of(prefix);
    if (!asn) return std::nullopt;
    return topo.geography.city(topo.graph.info(*asn).home_city).location;
  };
  map.server_locations = inference::geolocate_servers(sweeps, locator);

  // ---- Component 3: routes.
  stage_begin("map.routing");
  {
    obs::StageScope span("map.routing", 4, std::size(kMapStageNames));
    const routing::Bgp bgp(topo.graph);
    std::vector<Asn> feeders = topo.tier1s;
    const auto n_transit_feeders = static_cast<std::size_t>(
        options.collector_feeder_fraction *
        static_cast<double>(topo.transits.size()));
    for (std::size_t i = 0; i < n_transit_feeders; ++i) {
      feeders.push_back(topo.transits[i]);
    }
    const std::size_t stride =
        std::max<std::size_t>(1, options.routing_destination_stride);
    std::vector<Asn> destinations;
    destinations.reserve(topo.graph.size() / stride + 1);
    for (std::size_t i = 0; i < topo.graph.size(); i += stride) {
      destinations.push_back(Asn(static_cast<std::uint32_t>(i)));
    }
    obs::gauge_set("map.routing.destinations",
                   static_cast<std::int64_t>(destinations.size()));
    map.public_view =
        routing::collect_public_view(bgp, feeders, destinations, executor);
    map.observed_graph =
        routing::observed_subgraph(topo.graph, map.public_view);
    timings_.routing_s = span.close();
  }

  stage_begin("map.inference");
  {
    obs::StageScope span("map.inference", 5, std::size(kMapStageNames));
    const inference::PeeringRecommender recommender(s.peeringdb(),
                                                    map.observed_graph);
    map.recommended_links = recommender.recommend(options.recommend_links);
    map.augmented_graph =
        inference::augment_graph(map.observed_graph, map.recommended_links);
    timings_.inference_s = span.close();
  }
  return map;
}

}  // namespace itm::core
