#include "routing/bgp.h"

#include <algorithm>
#include <cassert>

namespace itm::routing {

using topology::Relation;

const char* to_string(RouteSource source) {
  switch (source) {
    case RouteSource::kOrigin: return "origin";
    case RouteSource::kCustomer: return "customer";
    case RouteSource::kPeer: return "peer";
    case RouteSource::kProvider: return "provider";
    case RouteSource::kNone: return "none";
  }
  return "unknown";
}

std::vector<Asn> RouteTable::path_from(Asn src) const {
  std::vector<Asn> path;
  const RouteEntry* entry = &at(src);
  if (!entry->reachable()) return path;
  Asn current = src;
  path.push_back(current);
  while (entry->source != RouteSource::kOrigin) {
    current = entry->next_hop;
    entry = &at(current);
    assert(entry->reachable() && "next_hop chain must terminate at origin");
    path.push_back(current);
    assert(path.size() <= size() && "route table contains a loop");
  }
  return path;
}

Asn RouteTable::penultimate(Asn src) const {
  const auto path = path_from(src);
  if (path.size() < 2) return src;
  return path[path.size() - 2];
}

RouteTable Bgp::routes_to(Asn dest) const {
  const Asn origins[] = {dest};
  return routes_to_set(origins);
}

RouteTable Bgp::routes_to_set(std::span<const Asn> origins) const {
  const auto& graph = *graph_;
  const std::size_t n = graph.size();
  std::vector<RouteEntry> entries(n);

  // ---- Seed origins.
  std::vector<Asn> frontier;
  std::vector<Asn> origin_list;
  for (const Asn o : origins) {
    if (entries[o.value()].source == RouteSource::kOrigin) continue;
    // Index into the deduplicated origin list (the one returned via
    // origins()), not into the raw input span.
    entries[o.value()] = RouteEntry{
        RouteSource::kOrigin, 0, o,
        static_cast<std::uint16_t>(origin_list.size())};
    frontier.push_back(o);
    origin_list.push_back(o);
  }

  // ---- Stage 1: customer routes. Level-synchronous BFS up provider edges;
  // all parents of a level are considered before children are fixed, so the
  // lowest-ASN parent wins ties deterministically.
  std::vector<Asn> next_frontier;
  std::vector<Asn> touched;
  std::uint16_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next_frontier.clear();
    touched.clear();
    for (const Asn u : frontier) {
      for (const auto& nb : graph.neighbors(u)) {
        if (nb.relation != Relation::kProvider) continue;  // u exports up
        RouteEntry& e = entries[nb.asn.value()];
        if (e.source == RouteSource::kOrigin) continue;
        if (e.source == RouteSource::kCustomer && e.hops < level) continue;
        if (e.source == RouteSource::kCustomer && e.hops == level) {
          if (u.value() < e.next_hop.value()) {
            e.next_hop = u;
            e.origin_index = entries[u.value()].origin_index;
          }
          continue;
        }
        // First customer route for this AS (at this minimal level).
        e = RouteEntry{RouteSource::kCustomer, level, u,
                       entries[u.value()].origin_index};
        next_frontier.push_back(nb.asn);
      }
    }
    frontier.swap(next_frontier);
  }

  // ---- Stage 2: peer routes. An AS with a customer route (or an origin)
  // exports it across each peering link; the receiver accepts only when it
  // has no customer route itself, choosing (shortest, lowest-ASN) neighbor.
  for (std::size_t v = 0; v < n; ++v) {
    RouteEntry& e = entries[v];
    if (e.source == RouteSource::kOrigin ||
        e.source == RouteSource::kCustomer) {
      continue;
    }
    for (const auto& nb : graph.neighbors(Asn(static_cast<std::uint32_t>(v)))) {
      if (nb.relation != Relation::kPeer) continue;
      const RouteEntry& u = entries[nb.asn.value()];
      if (u.source != RouteSource::kOrigin &&
          u.source != RouteSource::kCustomer) {
        continue;
      }
      const auto hops = static_cast<std::uint16_t>(u.hops + 1);
      const bool better =
          e.source != RouteSource::kPeer || hops < e.hops ||
          (hops == e.hops && nb.asn.value() < e.next_hop.value());
      if (better) {
        e = RouteEntry{RouteSource::kPeer, hops, nb.asn, u.origin_index};
      }
    }
  }

  // ---- Stage 3: provider routes. Every routed AS exports its best route to
  // its customers; propagate in increasing path length (bucket queue) so the
  // shortest provider route is fixed first, min-ASN parent on ties.
  std::vector<std::vector<Asn>> buckets;
  const auto push_bucket = [&buckets](std::uint16_t hops, Asn asn) {
    if (buckets.size() <= hops) buckets.resize(hops + 1);
    buckets[hops].push_back(asn);
  };
  for (std::size_t v = 0; v < n; ++v) {
    if (entries[v].reachable()) {
      push_bucket(entries[v].hops, Asn(static_cast<std::uint32_t>(v)));
    }
  }
  for (std::uint16_t hops = 0; hops < buckets.size(); ++hops) {
    // buckets may grow while iterating; index-based loop is intentional.
    for (std::size_t bi = 0; bi < buckets[hops].size(); ++bi) {
      const Asn u = buckets[hops][bi];
      const RouteEntry& ue = entries[u.value()];
      if (ue.hops != hops) continue;  // stale bucket entry
      const auto child_hops = static_cast<std::uint16_t>(hops + 1);
      for (const auto& nb : graph.neighbors(u)) {
        if (nb.relation != Relation::kCustomer) continue;
        RouteEntry& e = entries[nb.asn.value()];
        if (e.source == RouteSource::kNone) {
          e = RouteEntry{RouteSource::kProvider, child_hops, u,
                         ue.origin_index};
          push_bucket(child_hops, nb.asn);
        } else if (e.source == RouteSource::kProvider &&
                   e.hops == child_hops &&
                   u.value() < e.next_hop.value()) {
          e.next_hop = u;
          e.origin_index = ue.origin_index;
        }
      }
    }
  }

  return RouteTable(std::move(entries), std::move(origin_list));
}

void Bgp::routes_to_each(
    std::span<const Asn> destinations, net::Executor& executor,
    const std::function<void(const net::Executor::Shard&, std::size_t,
                             const RouteTable&)>& fn) const {
  executor.parallel_for(
      destinations.size(), [this, destinations, &fn](
                               const net::Executor::Shard& shard) {
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          fn(shard, i, routes_to(destinations[i]));
        }
      });
}

}  // namespace itm::routing
