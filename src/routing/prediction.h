// AS-path prediction over an (incomplete) observed topology, and its
// evaluation against ground truth.
//
// Prediction is Gao-Rexford routing computed on the observed subgraph — the
// standard academic approach (§3.3.1). The evaluation separates failures
// caused by missing links (the paper's headline: more than half of paths to
// root DNS could not be predicted) from mere tie-break mismatches.
#pragma once

#include <span>

#include "net/ids.h"
#include "routing/bgp.h"
#include "routing/public_view.h"

namespace itm::routing {

struct PredictionStats {
  std::size_t total = 0;
  // Predicted path identical to the true path.
  std::size_t exact = 0;
  // Predicted path differs but reaches the destination.
  std::size_t wrong = 0;
  // No route in the observed topology.
  std::size_t unreachable = 0;
  // True path uses at least one link absent from the observed topology
  // ("could not be predicted due to missing links").
  std::size_t true_path_missing_link = 0;

  [[nodiscard]] double exact_rate() const {
    return total == 0 ? 0.0 : static_cast<double>(exact) / total;
  }
  [[nodiscard]] double missing_link_rate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(true_path_missing_link) / total;
  }
};

// Compares predicted vs. true best paths for every (src, dest) pair.
// `truth` and `observed` must be graphs over the same dense ASN space.
[[nodiscard]] PredictionStats evaluate_prediction(
    const topology::AsGraph& truth, const topology::AsGraph& observed,
    const PublicView& view, std::span<const Asn> sources,
    std::span<const Asn> destinations);

}  // namespace itm::routing
