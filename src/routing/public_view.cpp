#include "routing/public_view.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace itm::routing {

using topology::AsGraph;
using topology::AsInfo;
using topology::Relation;

double PublicView::coverage(const AsGraph& graph) const {
  if (graph.links().empty()) return 0.0;
  std::size_t seen = 0;
  for (const auto& link : graph.links()) {
    if (observed(link.a, link.b)) ++seen;
  }
  return static_cast<double>(seen) /
         static_cast<double>(graph.links().size());
}

double PublicView::peering_coverage(const AsGraph& graph) const {
  std::size_t peering = 0, seen = 0;
  for (const auto& link : graph.links()) {
    if (link.a_to_b != Relation::kPeer) continue;
    ++peering;
    if (observed(link.a, link.b)) ++seen;
  }
  return peering == 0 ? 0.0
                      : static_cast<double>(seen) / static_cast<double>(peering);
}

namespace {

void add_feeder_paths(PublicView& view, const RouteTable& table,
                      std::span<const Asn> feeders) {
  for (const Asn feeder : feeders) {
    const auto path = table.path_from(feeder);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      view.add_link(path[i], path[i + 1]);
    }
  }
}

}  // namespace

PublicView collect_public_view(const Bgp& bgp, std::span<const Asn> feeders,
                               std::span<const Asn> destinations) {
  return collect_public_view(bgp, feeders, destinations,
                             net::Executor::serial());
}

PublicView collect_public_view(const Bgp& bgp, std::span<const Asn> feeders,
                               std::span<const Asn> destinations,
                               net::Executor& executor) {
  ITM_SPAN("routing.public_view.collect");
  // One view per shard, merged in shard order. Membership in the view is a
  // set union, so the merged content equals the serial result exactly.
  const auto shard_views = executor.map_shards<PublicView>(
      destinations.size(),
      [&bgp, feeders, destinations](const net::Executor::Shard& shard) {
        PublicView view;
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          add_feeder_paths(view, bgp.routes_to(destinations[i]), feeders);
        }
        return view;
      });
  PublicView view;
  for (const auto& shard_view : shard_views) view.merge(shard_view);
  // Every feeder announces its best path to every destination; the visible
  // link set is what survives best-path selection.
  obs::count("routing.public_view.announcements",
             feeders.size() * destinations.size());
  obs::count("routing.public_view.collections");
  obs::gauge_set("routing.public_view.visible_links",
                 static_cast<std::int64_t>(view.link_count()));
  return view;
}

topology::AsGraph observed_subgraph(const AsGraph& graph,
                                    const PublicView& view) {
  return topology::copy_graph(graph, [&view](const topology::Link& link) {
    return view.observed(link.a, link.b);
  });
}

}  // namespace itm::routing
