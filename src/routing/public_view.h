// The public, route-collector view of the AS topology.
//
// Route collectors receive best paths from a set of feeder ASes (the
// analogue of RouteViews/RIPE RIS peers). A link is "visible" only when it
// appears on some feeder's best path to some destination. Peering links of
// hypergiants and eyeballs rarely lie on such paths, so most of them are
// invisible — the paper's §3.3.1 obstacle, and [4]'s ">90% of IXP peerings
// not visible" observation.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>

#include "net/ids.h"
#include "routing/bgp.h"
#include "topology/as_graph.h"

namespace itm::routing {

class PublicView {
 public:
  void add_link(Asn a, Asn b) { links_.insert(asn_pair_key(a, b)); }

  // Union with another view (e.g. cloud-vantage observations, §3.3.2).
  void merge(const PublicView& other) {
    links_.insert(other.links_.begin(), other.links_.end());
  }
  [[nodiscard]] bool observed(Asn a, Asn b) const {
    return links_.contains(asn_pair_key(a, b));
  }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  // Fraction of the graph's links that are observed.
  [[nodiscard]] double coverage(const topology::AsGraph& graph) const;

  // Fraction of *peering* links observed (transit links are nearly always
  // visible; peering visibility is the interesting number).
  [[nodiscard]] double peering_coverage(const topology::AsGraph& graph) const;

 private:
  std::unordered_set<std::uint64_t> links_;
};

// Simulates collectors peering with `feeders`: every feeder contributes its
// best path to every destination in `destinations`. When an executor is
// given, propagation is sharded over destinations and per-shard views are
// merged in shard order; the view is a set, so the result is identical to
// the serial path for every thread count.
[[nodiscard]] PublicView collect_public_view(
    const Bgp& bgp, std::span<const Asn> feeders,
    std::span<const Asn> destinations);
[[nodiscard]] PublicView collect_public_view(
    const Bgp& bgp, std::span<const Asn> feeders,
    std::span<const Asn> destinations, net::Executor& executor);

// A copy of the graph containing only observed links (all ASes retained,
// true relationships assumed correctly inferred). This is the topology a
// researcher would feed a path-prediction algorithm.
[[nodiscard]] topology::AsGraph observed_subgraph(
    const topology::AsGraph& graph, const PublicView& view);

}  // namespace itm::routing
