// AS-level BGP policy routing.
//
// Computes, for every AS, the best route toward a destination AS (or a set
// of anycast origins) under the standard Gao-Rexford model:
//   * valley-free export: routes learned from a customer are exported to
//     everyone; routes learned from a peer or provider only to customers;
//   * selection: prefer customer-learned > peer-learned > provider-learned,
//     then shortest AS path, then lowest next-hop ASN (deterministic).
//
// The implementation is the three-stage propagation used in routing
// simulation literature: (1) customer routes via BFS up provider edges from
// the origin, (2) peer routes one peering hop off any customer route,
// (3) provider routes via a length-bucketed BFS down customer edges.
// One propagation is O(V + E); route tables are dense arrays indexed by ASN.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "net/executor.h"
#include "net/ids.h"
#include "topology/as_graph.h"

namespace itm::routing {

enum class RouteSource : std::uint8_t {
  kOrigin,    // this AS originates the destination
  kCustomer,  // learned from a customer
  kPeer,      // learned from a peer
  kProvider,  // learned from a provider
  kNone,      // unreachable
};

[[nodiscard]] const char* to_string(RouteSource source);

struct RouteEntry {
  RouteSource source = RouteSource::kNone;
  // AS-path length in hops (origin has 0, its neighbor 1, ...).
  std::uint16_t hops = std::numeric_limits<std::uint16_t>::max();
  // Neighbor toward the destination (undefined when source is kNone/kOrigin).
  Asn next_hop{0};
  // Which origin won (index into the origin set; 0 for single-origin).
  std::uint16_t origin_index = 0;

  [[nodiscard]] bool reachable() const { return source != RouteSource::kNone; }
};

// Best routes from every AS toward one destination (or anycast origin set).
class RouteTable {
 public:
  RouteTable(std::vector<RouteEntry> entries, std::vector<Asn> origins)
      : entries_(std::move(entries)), origins_(std::move(origins)) {}

  [[nodiscard]] const RouteEntry& at(Asn asn) const {
    return entries_[asn.value()];
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<Asn>& origins() const { return origins_; }

  // Full AS path from src to the winning origin, inclusive of both ends.
  // Empty when src has no route.
  [[nodiscard]] std::vector<Asn> path_from(Asn src) const;

  // The AS immediately before the origin on src's path (the origin's
  // ingress neighbor). For src == origin returns src itself.
  [[nodiscard]] Asn penultimate(Asn src) const;

 private:
  std::vector<RouteEntry> entries_;
  std::vector<Asn> origins_;
};

class Bgp {
 public:
  explicit Bgp(const topology::AsGraph& graph) : graph_(&graph) {}

  // Best routes from every AS to `dest`.
  [[nodiscard]] RouteTable routes_to(Asn dest) const;

  // Best routes from every AS to the nearest (in policy terms) of several
  // origins announcing the same prefix (anycast). Entries record which
  // origin index won.
  [[nodiscard]] RouteTable routes_to_set(std::span<const Asn> origins) const;

  // One full propagation per destination, sharded across `executor`
  // (parallel over origin ASes; each propagation is independent).
  // `fn(shard, dest_index, table)` runs on worker threads: calls within a
  // shard arrive in increasing dest_index order on one thread, so callers
  // accumulate into per-shard state and merge in shard order — the merged
  // result is then identical for every thread count.
  void routes_to_each(
      std::span<const Asn> destinations, net::Executor& executor,
      const std::function<void(const net::Executor::Shard&, std::size_t,
                               const RouteTable&)>& fn) const;

  [[nodiscard]] const topology::AsGraph& graph() const { return *graph_; }

 private:
  const topology::AsGraph* graph_;
};

}  // namespace itm::routing
