#include "routing/prediction.h"

namespace itm::routing {

PredictionStats evaluate_prediction(const topology::AsGraph& truth,
                                    const topology::AsGraph& observed,
                                    const PublicView& view,
                                    std::span<const Asn> sources,
                                    std::span<const Asn> destinations) {
  PredictionStats stats;
  const Bgp truth_bgp(truth);
  const Bgp observed_bgp(observed);
  for (const Asn dest : destinations) {
    const RouteTable true_table = truth_bgp.routes_to(dest);
    const RouteTable pred_table = observed_bgp.routes_to(dest);
    for (const Asn src : sources) {
      if (src == dest || !true_table.at(src).reachable()) continue;
      ++stats.total;
      const auto true_path = true_table.path_from(src);
      bool missing = false;
      for (std::size_t i = 0; i + 1 < true_path.size(); ++i) {
        if (!view.observed(true_path[i], true_path[i + 1])) {
          missing = true;
          break;
        }
      }
      if (missing) ++stats.true_path_missing_link;
      if (!pred_table.at(src).reachable()) {
        ++stats.unreachable;
        continue;
      }
      if (pred_table.path_from(src) == true_path) {
        ++stats.exact;
      } else {
        ++stats.wrong;
      }
    }
  }
  return stats;
}

}  // namespace itm::routing
