// Example: mapping one popular service end to end (§3.2).
//
// Given a service hostname, discover its serving footprint with SNI
// scanning, map which front end every client prefix is directed to with ECS
// probing, geolocate the front ends from their client sets, and summarize
// users-per-site — the "where are services and how do users reach them"
// components of the traffic map for a single service.
//
//   $ ./service_mapping [seed] [hostname, default: most popular ECS service]
#include <cstring>
#include <iostream>
#include <map>

#include "core/report.h"
#include "core/scenario.h"
#include "inference/geolocation.h"
#include "scan/ecs_mapper.h"
#include "scan/tls_scanner.h"

int main(int argc, char** argv) {
  using namespace itm;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  auto scenario = core::Scenario::generate(core::default_config(seed));
  const auto& topo = scenario->topo();

  // Choose the service.
  const cdn::Service* service = nullptr;
  if (argc > 2) {
    service = scenario->catalog().by_hostname(argv[2]);
    if (service == nullptr) {
      std::cerr << "unknown hostname '" << argv[2] << "'\n";
      return 1;
    }
  } else {
    for (const ServiceId sid : scenario->catalog().by_popularity()) {
      const auto& svc = scenario->catalog().service(sid);
      if (svc.supports_ecs) {
        service = &svc;
        break;
      }
    }
  }
  std::cout << "== service: " << service->hostname << " ("
            << cdn::to_string(service->redirection)
            << (service->supports_ecs ? ", ECS" : "") << ") ==\n";

  // 1. SNI scan over discovered CDN addresses: the hosting footprint.
  const scan::TlsScanner scanner(scenario->tls(), topo.addresses);
  std::vector<std::string> operators;
  for (const auto& hg : scenario->deployment().hypergiants()) {
    operators.push_back(hg.name);
  }
  const auto tls = scanner.sweep(operators);
  std::vector<Ipv4Addr> cdn_addresses;
  for (const auto& ep : tls.endpoints) cdn_addresses.push_back(ep.address);
  const auto footprint = scanner.sni_scan(service->hostname, cdn_addresses);
  std::cout << "SNI scan: " << footprint.size() << " addresses serve this "
            << "hostname (of " << cdn_addresses.size()
            << " TLS endpoints found)\n";

  // 2. ECS sweep: client /24 -> front end.
  const scan::EcsMapper mapper(scenario->dns().authoritative(),
                               topo.geography.cities().front().id);
  const auto routable = topo.addresses.routable_slash24s();
  const auto sweep = mapper.sweep(*service, routable);

  // 3. Geolocate the front ends from their client sets.
  const inference::PrefixLocator locator =
      [&topo](const Ipv4Prefix& prefix) -> std::optional<GeoPoint> {
    const auto asn = topo.addresses.origin_of(prefix);
    if (!asn) return std::nullopt;
    return topo.geography.city(topo.graph.info(*asn).home_city).location;
  };
  const auto located = inference::geolocate_servers({sweep}, locator);

  // 4. Per-front-end summary with user weights (the map's point: weigh by
  // users, not by prefix count).
  std::map<Ipv4Addr, std::pair<std::size_t, double>> per_fe;  // prefixes, users
  for (const auto& [prefix, fe] : sweep) {
    auto& entry = per_fe[fe];
    entry.first += 1;
    if (const auto* up = scenario->users().find(prefix)) {
      entry.second += up->users;
    }
  }
  core::Table table({"front end", "host AS", "inferred location",
                     "client /24s", "users served"});
  for (const auto& [fe, stats] : per_fe) {
    const auto host = topo.addresses.origin_of(fe);
    std::string loc = "-";
    for (const auto& g : located) {
      if (g.address == fe) {
        loc = "(" + core::num(g.location.lat_deg, 1) + "," +
              core::num(g.location.lon_deg, 1) + ")";
      }
    }
    table.row(fe.to_string(),
              host ? topo.graph.info(*host).name : "?", loc, stats.first,
              static_cast<std::uint64_t>(stats.second));
  }
  table.print();

  // Off-net share of the mapping.
  std::size_t offnet_24s = 0;
  for (const auto& [prefix, fe] : sweep) {
    const auto* ep = scenario->tls().endpoint_at(fe);
    if (ep != nullptr && ep->offnet) ++offnet_24s;
  }
  std::cout << "\nclient /24s mapped to an off-net cache inside their own "
               "ISP: "
            << offnet_24s << " (" << core::pct(static_cast<double>(offnet_24s) / sweep.size())
            << ")\n";
  return 0;
}
