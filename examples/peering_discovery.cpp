// Example: discovering invisible peering (§3.3).
//
// Shows how much of the AS-level topology route collectors actually see,
// runs the facility-based peering recommender over the PeeringDB registry,
// prints its best guesses with ground-truth verdicts, and traceroutes one
// eyeball-to-hypergiant path to show the data plane crossing a link no
// collector observed.
//
//   $ ./peering_discovery [seed]
#include <cstring>
#include <iostream>

#include "core/report.h"
#include "core/scenario.h"
#include "inference/recommender.h"
#include "routing/public_view.h"
#include "scan/traceroute.h"

int main(int argc, char** argv) {
  using namespace itm;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  auto scenario = core::Scenario::generate(core::default_config(seed));
  const auto& topo = scenario->topo();
  const routing::Bgp bgp(topo.graph);

  // Public view from collector feeders.
  std::vector<Asn> feeders = topo.tier1s;
  for (std::size_t i = 0; i < topo.transits.size() / 6; ++i) {
    feeders.push_back(topo.transits[i]);
  }
  std::vector<Asn> dests;
  for (const auto& as : topo.graph.ases()) dests.push_back(as.asn);
  const auto view = routing::collect_public_view(bgp, feeders, dests);
  const auto observed = routing::observed_subgraph(topo.graph, view);

  std::cout << "== what route collectors see ==\n";
  std::cout << "links in ground truth: " << topo.graph.links().size()
            << ", observed: " << view.link_count() << " ("
            << core::pct(view.coverage(topo.graph)) << ")\n";
  std::cout << "peering links observed: "
            << core::pct(view.peering_coverage(topo.graph))
            << " — the rest is the invisible mesh the paper wants mapped\n";

  // Recommender.
  const inference::PeeringRecommender recommender(scenario->peeringdb(),
                                                  observed);
  const auto candidates = recommender.recommend(15);
  std::cout << "\n== top recommended missing links ==\n";
  core::Table table({"rank", "a", "b", "score", "ground truth"});
  std::size_t rank = 1;
  for (const auto& c : candidates) {
    table.row(rank++, topo.graph.info(c.a).name, topo.graph.info(c.b).name,
              core::num(c.score), topo.graph.adjacent(c.a, c.b)
                                      ? "link exists"
                                      : "no link");
  }
  table.print();

  // A data-plane path crossing invisible links.
  const scan::Traceroute tracer(topo, scenario->routers());
  for (const Asn src : topo.accesses) {
    const Asn dst_as = topo.hypergiants.front();
    const auto table_to_hg = bgp.routes_to(dst_as);
    const auto path = table_to_hg.path_from(src);
    bool invisible = false;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (!view.observed(path[i], path[i + 1])) invisible = true;
    }
    if (!invisible) continue;
    const auto dst = topo.addresses.of(dst_as).infra_slash24.address_at(1);
    std::cout << "\n== traceroute " << topo.graph.info(src).name << " -> "
              << topo.graph.info(dst_as).name
              << " (crosses a collector-invisible link) ==\n";
    core::Table hops({"hop", "AS", "interface", "rtt ms", "link to next"});
    const auto trace = tracer.trace(src, dst);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      std::string note;
      if (i + 1 < trace.size()) {
        note = view.observed(trace[i].asn, trace[i + 1].asn)
                   ? "public"
                   : "INVISIBLE to collectors";
      }
      hops.row(i + 1, topo.graph.info(trace[i].asn).name,
               trace[i].interface.to_string(), core::num(trace[i].rtt_ms, 1),
               note);
    }
    hops.print();
    break;
  }
  return 0;
}
