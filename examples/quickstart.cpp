// Quickstart: generate a synthetic Internet, build a traffic map from
// public-data measurements, and compare a few headline numbers against the
// hidden ground truth.
//
//   $ ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/report.h"
#include "core/scenario.h"
#include "core/traffic_map.h"
#include "inference/client_detection.h"

int main(int argc, char** argv) {
  using namespace itm;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::cout << "== itm quickstart ==\n";
  auto scenario = core::Scenario::generate(core::default_config(seed));
  const auto& topo = scenario->topo();
  std::cout << "generated internet: " << topo.graph.size() << " ASes, "
            << topo.graph.links().size() << " links, "
            << scenario->users().size() << " user /24s, "
            << scenario->catalog().size() << " services, "
            << scenario->deployment().front_ends().size()
            << " CDN front ends\n";

  core::MapBuilder builder(*scenario);
  const auto map = builder.build();

  core::Table summary({"map component", "value"});
  summary.row("client /24s detected (cache probing)",
              map.client_prefixes.size());
  summary.row("client ASes (combined techniques)", map.client_ases.size());
  summary.row("TLS endpoints discovered", map.tls.endpoints.size());
  summary.row("servers geolocated", map.server_locations.size());
  summary.row("ECS-mapped services", map.user_mapping.size());
  summary.row("links in public view", map.public_view.link_count());
  summary.row("recommended peering links", map.recommended_links.size());
  summary.print();

  // Score client detection against ground truth (reference hypergiant 0,
  // the paper's "fraction of Microsoft CDN traffic" metric).
  const auto coverage = inference::evaluate_prefixes(
      map.client_prefixes, scenario->users(), scenario->matrix(),
      HypergiantId(0));
  std::cout << "\ncache probing covers " << core::pct(coverage.traffic_coverage)
            << " of the reference hypergiant's traffic"
            << " (false positives " << core::pct(coverage.false_positive_rate)
            << ")\n";
  std::cout << "public peering-link visibility: "
            << core::pct(map.public_view.peering_coverage(topo.graph))
            << " of true peering links\n";
  return 0;
}
