// Example: "banishing unweighted CDFs" — the paper's opening argument in
// thirty lines. Computes the same three analyses unweighted and traffic-
// weighted and prints how the conclusions flip.
//
//   $ ./weighted_cdf [seed]
#include <cstring>
#include <iostream>

#include "core/report.h"
#include "core/scenario.h"
#include "net/stats.h"
#include "routing/bgp.h"

int main(int argc, char** argv) {
  using namespace itm;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  auto scenario = core::Scenario::generate(core::default_config(seed));
  const auto& topo = scenario->topo();
  const auto& matrix = scenario->matrix();

  core::Table table({"analysis", "unweighted answer", "weighted answer"});

  // 1. "How long is a typical Internet path?"
  {
    const auto hist = matrix.bytes_by_hops();
    double total = 0, acc = 0;
    for (const double b : hist) total += b;
    double weighted_median = 0;
    for (std::size_t h = 0; h < hist.size(); ++h) {
      acc += hist[h];
      if (acc >= total / 2) {
        weighted_median = static_cast<double>(h);
        break;
      }
    }
    // Unweighted: path lengths from every AS to a mixed destination set.
    const routing::Bgp bgp(topo.graph);
    WeightedCdf unweighted;
    for (std::size_t i = 0; i < 25 && i < topo.contents.size(); ++i) {
      const auto t = bgp.routes_to(topo.contents[i]);
      for (const auto& as : topo.graph.ases()) {
        if (t.at(as.asn).reachable()) unweighted.add(t.at(as.asn).hops);
      }
    }
    table.row("median AS-path length",
              core::num(unweighted.quantile(0.5), 0) + " hops",
              core::num(weighted_median, 0) + " hops (per byte)");
  }

  // 2. "Does a typical network outage matter?"
  {
    WeightedCdf unweighted, weighted;
    for (const Asn asn : topo.accesses) {
      const double share =
          matrix.as_client_bytes(asn) / matrix.total_bytes();
      unweighted.add(share);
      weighted.add(share, share);
    }
    table.row("median AS outage affects",
              core::pct(unweighted.quantile(0.5), 2) + " of traffic",
              core::pct(weighted.quantile(0.5), 2) + " (per byte)");
  }

  // 3. "Is a congested interconnect a big deal?"
  {
    const auto link_bytes = matrix.link_bytes();
    double total = 0;
    for (const double b : link_bytes) total += b;
    WeightedCdf unweighted, weighted;
    for (const double b : link_bytes) {
      unweighted.add(b / total);
      weighted.add(b / total, b);
    }
    table.row("median congested link carries",
              core::pct(unweighted.quantile(0.5), 3) + " of traffic",
              core::pct(weighted.quantile(0.5), 3) + " (per byte)");
  }

  std::cout << "== the unweighted-CDF fallacy, quantified ==\n";
  table.print();
  std::cout << "\nevery row: counting paths/networks/links equally suggests "
               "phenomena are mild; weighting by the traffic map shows what "
               "a typical BYTE experiences.\n";
  return 0;
}
