// Example: the paper's §2.1 outage use case.
//
// "To assess the impact of an outage in a <region, AS>, the map can tell us
// which popular services are affected, which prefixes are affected for
// those services, what fraction of traffic or users are affected, and where
// the prefixes may be routed instead."
//
//   $ ./outage_impact [seed] [AS name, default: the biggest Francia ISP]
#include <cstring>
#include <iostream>

#include "core/report.h"
#include "core/scenario.h"
#include "core/traffic_map.h"
#include "routing/bgp.h"

int main(int argc, char** argv) {
  using namespace itm;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  auto scenario = core::Scenario::generate(core::default_config(seed));
  const auto& topo = scenario->topo();

  // Pick the AS to fail.
  Asn failed = topo.accesses_in(CountryId(0)).front();
  if (argc > 2) {
    bool found = false;
    for (const auto& as : topo.graph.ases()) {
      if (as.name == argv[2]) {
        failed = as.asn;
        found = true;
      }
    }
    if (!found) {
      std::cerr << "unknown AS name '" << argv[2] << "'\n";
      return 1;
    }
  }

  std::cout << "building the traffic map (public data only)...\n";
  core::MapBuilder builder(*scenario);
  const auto map = builder.build();

  const auto& info = topo.graph.info(failed);
  const auto impact = map.outage_impact(failed, topo.addresses);
  std::cout << "\n== outage scenario: " << info.name << " ("
            << topo.geography.country(info.country).name << ", "
            << topology::to_string(info.type) << ") ==\n";
  std::cout << "estimated share of global activity affected: "
            << core::pct(impact.activity_share) << "\n";
  std::cout << "client /24s known to the map inside the AS: "
            << impact.client_prefixes << "\n";
  std::cout << "CDN servers (off-net caches) inside the AS: "
            << impact.servers_inside << "\n";
  if (!impact.services_served_from.empty()) {
    std::cout << "services with mapped front ends inside the AS:";
    for (const ServiceId sid : impact.services_served_from) {
      std::cout << " " << scenario->catalog().service(sid).hostname;
    }
    std::cout << "\n  -> during the outage those bytes fall back to on-net "
                 "sites (higher latency, upstream links)\n";
  }

  // Where would this AS's traffic be routed instead? Use the map's
  // augmented topology: the failed AS's providers and peers absorb it.
  std::cout << "\nupstreams that would absorb redirected traffic:\n";
  core::Table table({"neighbor", "relation", "note"});
  for (const auto& nb : map.augmented_graph.neighbors(failed)) {
    const auto& n = topo.graph.info(nb.asn);
    const char* rel = nb.relation == topology::Relation::kProvider
                          ? "provider"
                          : nb.relation == topology::Relation::kPeer
                                ? "peer"
                                : "customer";
    if (nb.relation == topology::Relation::kCustomer) continue;
    table.row(n.name, rel,
              map.public_view.observed(failed, nb.asn)
                  ? "publicly visible link"
                  : "link known only via recommender");
  }
  table.print();

  // Ground-truth check for the curious (a real deployment could not do
  // this): the true traffic share.
  std::cout << "\n[ground truth] actual share of global bytes: "
            << core::pct(scenario->matrix().as_client_bytes(failed) /
                         scenario->matrix().total_bytes())
            << "\n";
  return 0;
}
